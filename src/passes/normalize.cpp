#include "passes/normalize.hpp"

#include <algorithm>
#include <set>

namespace hpfsc::passes {

namespace {

using ir::AffineBound;
using ir::ArrayId;

class Normalizer {
 public:
  Normalizer(ir::Program& program, const NormalizeOptions& opts,
             DiagnosticEngine& diags)
      : prog_(program), opts_(opts), diags_(diags) {}

  NormalizeStats run() {
    process_block(prog_.body);
    return stats_;
  }

 private:
  // A per-block pool of reusable temporaries.
  struct TempPool {
    std::vector<ArrayId> free;
    std::vector<ArrayId> all;
  };

  void process_block(ir::Block& block) {
    TempPool pool;
    ir::Block out;
    for (ir::StmtPtr& sp : block) {
      switch (sp->kind) {
        case ir::StmtKind::ArrayAssign:
          process_assign(static_cast<ir::ArrayAssignStmt&>(*sp), sp, out,
                         pool);
          break;
        case ir::StmtKind::If: {
          auto& iff = static_cast<ir::IfStmt&>(*sp);
          process_block(iff.then_block);
          process_block(iff.else_block);
          out.push_back(std::move(sp));
          break;
        }
        case ir::StmtKind::Do: {
          auto& loop = static_cast<ir::DoStmt&>(*sp);
          process_block(loop.body);
          out.push_back(std::move(sp));
          break;
        }
        default:
          out.push_back(std::move(sp));
          break;
      }
    }
    // Allocate the block's temporaries up front and free them at the
    // end (the paper's Figure 4 shape).
    if (!pool.all.empty()) {
      auto alloc = std::make_unique<ir::AllocStmt>();
      alloc->arrays = pool.all;
      out.insert(out.begin(), std::move(alloc));
      auto free = std::make_unique<ir::FreeStmt>();
      free->arrays = pool.all;
      out.push_back(std::move(free));
    }
    block = std::move(out);
  }

  void process_assign(ir::ArrayAssignStmt& stmt, ir::StmtPtr& sp,
                      ir::Block& out, TempPool& pool) {
    // Fast path: the statement is already a normal-form singleton
    //   DST = CSHIFT(SRC, s, d)  with whole-array operands.
    if (stmt.lhs.whole_array() && stmt.rhs->kind == ir::ExprKind::Shift &&
        stmt.rhs->lhs->kind == ir::ExprKind::ArrayRefK &&
        stmt.rhs->lhs->ref.whole_array() && !stmt.rhs->lhs->ref.has_offset()) {
      out.push_back(make_shift_assign(stmt.lhs.array, stmt.rhs->lhs->ref,
                                      *stmt.rhs, stmt.loc));
      return;
    }

    // Step 1: convert misaligned array-syntax sections to shift chains.
    align_sections(stmt.rhs, stmt.lhs);

    // Step 2: hoist every shift into a singleton assignment to a
    // temporary, innermost first.
    std::vector<ArrayId> consumed;
    hoist_shifts(stmt.rhs, stmt.lhs, out, pool, consumed,
                 /*inside_shift=*/false);

    out.push_back(std::move(sp));

    // Temporaries consumed by this statement die here.
    if (opts_.reuse_temps) {
      for (ArrayId t : consumed) pool.free.push_back(t);
    }
  }

  /// Rewrites every sectioned reference in the tree whose section is
  /// offset from the LHS section into CSHIFT chains of the whole array.
  void align_sections(ir::ExprPtr& e, const ir::ArrayRef& lhs) {
    if (e->lhs) align_sections(e->lhs, lhs);
    if (e->rhs) align_sections(e->rhs, lhs);
    if (e->kind != ir::ExprKind::ArrayRefK) return;
    ir::ArrayRef& ref = e->ref;
    if (ref.whole_array()) return;

    const ir::ArraySymbol& sym = prog_.symbols.array(ref.array);
    std::array<int, ir::kMaxRank> delta{0, 0, 0};
    bool any = false;
    for (int d = 0; d < sym.rank; ++d) {
      ir::SectionRange lhs_range;
      if (lhs.whole_array()) {
        lhs_range.lo = AffineBound(1);
        lhs_range.hi = prog_.symbols.array(lhs.array).extent[d];
      } else {
        lhs_range = lhs.section[static_cast<std::size_t>(d)];
      }
      const ir::SectionRange& r = ref.section[static_cast<std::size_t>(d)];
      auto dlo = AffineBound::difference(r.lo, lhs_range.lo);
      auto dhi = AffineBound::difference(r.hi, lhs_range.hi);
      if (!dlo || !dhi || *dlo != *dhi) {
        diags_.error(e->loc,
                     "section of '" + sym.name +
                         "' does not conform to the assignment's "
                         "iteration space");
        return;
      }
      delta[d] = *dlo;
      if (*dlo != 0) any = true;
    }
    if (!any) {
      // Aligned: canonicalize a full-extent section to a whole-array ref.
      if (lhs.whole_array()) ref.section.clear();
      return;
    }
    ++stats_.sections_converted;
    // Wrap the (whole-array) reference in one CSHIFT per offset dim.
    // CSHIFT semantics: TMP = CSHIFT(A, delta, d) gives TMP(i) = A(i+delta),
    // exactly the offset the section expressed.
    ir::ArrayRef whole;
    whole.array = ref.array;
    ir::ExprPtr inner = ir::make_array_ref(whole, e->loc);
    for (int d = 0; d < sym.rank; ++d) {
      if (delta[d] == 0) continue;
      inner = ir::make_shift(ir::ShiftIntrinsic::CShift, std::move(inner),
                             delta[d], d, nullptr, e->loc);
    }
    e = std::move(inner);
  }

  /// Hoists shift nodes (post-order) into singleton temporary
  /// assignments emitted before the statement.
  void hoist_shifts(ir::ExprPtr& e, const ir::ArrayRef& lhs, ir::Block& out,
                    TempPool& pool, std::vector<ArrayId>& consumed,
                    bool inside_shift) {
    const bool is_shift = e->kind == ir::ExprKind::Shift;
    if (e->lhs) hoist_shifts(e->lhs, lhs, out, pool, consumed, is_shift);
    if (e->rhs) hoist_shifts(e->rhs, lhs, out, pool, consumed, false);
    if (!is_shift) return;

    // The shift argument must be a whole-array reference; materialize
    // anything else (e.g. CSHIFT(A+B, ...)) into a temporary first.
    if (e->lhs->kind != ir::ExprKind::ArrayRefK ||
        !e->lhs->ref.whole_array()) {
      ArrayId model = model_array(*e->lhs, lhs);
      ArrayId t = acquire_temp(model, pool);
      auto assign = std::make_unique<ir::ArrayAssignStmt>();
      assign->loc = e->loc;
      assign->lhs.array = t;
      assign->rhs = std::move(e->lhs);
      out.push_back(std::move(assign));
      ir::ArrayRef tref;
      tref.array = t;
      e->lhs = ir::make_array_ref(tref, e->loc);
      // The temp is consumed by the shift we are about to emit.
    }

    const ir::ArrayRef src = e->lhs->ref;
    ArrayId t = acquire_temp(src.array, pool);
    out.push_back(make_shift_assign(t, src, *e, e->loc));
    ++stats_.shifts_hoisted;
    // If the shift's source was itself a pool temporary (an inner link
    // of a chain), it dies right here and can be reused.
    release_if_temp(src.array, pool, consumed);

    // Replace the shift node with a reference to the temporary.  At the
    // top level the reference carries the LHS's section so operands stay
    // aligned (Figure 4); inside an enclosing shift (a chain link) the
    // reference stays whole-array.
    ir::ArrayRef tref;
    tref.array = t;
    if (!inside_shift) tref.section = lhs.section;
    e = ir::make_array_ref(tref, e->loc);
    consumed.push_back(t);
  }

  ir::StmtPtr make_shift_assign(ArrayId dst, const ir::ArrayRef& src,
                                const ir::Expr& shift, SourceLoc loc) {
    auto s = std::make_unique<ir::ShiftAssignStmt>();
    s->loc = loc;
    s->dst = dst;
    s->src = src;
    s->shift = shift.shift;
    s->dim = shift.dim;
    s->intrinsic = shift.intrinsic;
    s->boundary = shift.boundary ? shift.boundary->clone() : nullptr;
    return s;
  }

  /// Picks an array whose shape models a subexpression (first array
  /// referenced; falls back to the statement LHS).
  ArrayId model_array(const ir::Expr& e, const ir::ArrayRef& lhs) {
    auto arrays = ir::referenced_arrays(e);
    return arrays.empty() ? lhs.array : arrays.front();
  }

  ArrayId acquire_temp(ArrayId model, TempPool& pool) {
    if (opts_.reuse_temps) {
      for (auto it = pool.free.begin(); it != pool.free.end(); ++it) {
        if (prog_.symbols.conformable(*it, model)) {
          ArrayId t = *it;
          pool.free.erase(it);
          return t;
        }
      }
    }
    ArrayId t = prog_.symbols.make_temp(model);
    pool.all.push_back(t);
    ++stats_.temps_created;
    return t;
  }

  void release_if_temp(ArrayId a, TempPool& pool,
                       std::vector<ArrayId>& consumed) {
    if (!opts_.reuse_temps) return;
    if (std::find(pool.all.begin(), pool.all.end(), a) == pool.all.end()) {
      return;
    }
    auto it = std::find(consumed.begin(), consumed.end(), a);
    if (it != consumed.end()) consumed.erase(it);
    pool.free.push_back(a);
  }

  ir::Program& prog_;
  const NormalizeOptions& opts_;
  DiagnosticEngine& diags_;
  NormalizeStats stats_;
};

}  // namespace

NormalizeStats normalize(ir::Program& program, const NormalizeOptions& opts,
                         DiagnosticEngine& diags) {
  return Normalizer(program, opts, diags).run();
}

}  // namespace hpfsc::passes

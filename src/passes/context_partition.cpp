#include "passes/context_partition.hpp"

#include "analysis/congruence.hpp"
#include "analysis/ddg.hpp"

namespace hpfsc::passes {

namespace {

bool is_barrier(const ir::Stmt& s) {
  return s.kind == ir::StmtKind::If || s.kind == ir::StmtKind::Do ||
         s.kind == ir::StmtKind::LoopNest;
}

class Partitioner {
 public:
  Partitioner(ir::Program& program) : prog_(program) {}

  ContextPartitionStats run() {
    process_block(prog_.body);
    return stats_;
  }

 private:
  void process_block(ir::Block& block) {
    ir::Block out;
    std::size_t i = 0;
    while (i < block.size()) {
      if (is_barrier(*block[i])) {
        if (auto* iff = dynamic_cast<ir::IfStmt*>(block[i].get())) {
          process_block(iff->then_block);
          process_block(iff->else_block);
        } else if (auto* loop = dynamic_cast<ir::DoStmt*>(block[i].get())) {
          process_block(loop->body);
        }
        out.push_back(std::move(block[i]));
        ++i;
        continue;
      }
      // Maximal run of reorderable statements.
      std::size_t j = i;
      while (j < block.size() && !is_barrier(*block[j])) ++j;
      reorder_run(block, i, j, out);
      i = j;
    }
    block = std::move(out);
  }

  void reorder_run(ir::Block& block, std::size_t first, std::size_t last,
                   ir::Block& out) {
    std::vector<const ir::Stmt*> stmts;
    stmts.reserve(last - first);
    for (std::size_t k = first; k < last; ++k) {
      stmts.push_back(block[k].get());
    }
    analysis::Ddg ddg = analysis::Ddg::build(stmts);
    auto groups = analysis::typed_fusion(stmts, ddg, prog_.symbols);
    int position = 0;
    for (const analysis::PartitionGroup& g : groups) {
      ++stats_.groups_formed;
      for (int idx : g.stmts) {
        if (idx != position) ++stats_.statements_moved;
        ++position;
        out.push_back(std::move(block[first + static_cast<std::size_t>(idx)]));
      }
    }
  }

  ir::Program& prog_;
  ContextPartitionStats stats_;
};

}  // namespace

ContextPartitionStats context_partition(ir::Program& program,
                                        DiagnosticEngine& diags) {
  (void)diags;
  return Partitioner(program).run();
}

}  // namespace hpfsc::passes

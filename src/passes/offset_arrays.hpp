// Offset-array optimization (paper Section 3.1): eliminates the
// intraprocessor data movement of normal-form shift assignments
//   DST = CSHIFT(SRC, s, d)
// by letting DST share SRC's storage.  The shift is replaced by
//   CALL OVERLAP_CSHIFT(SRC, s, d)
// which moves only off-processor boundary data into SRC's overlap area,
// and every use of DST reached by this definition is rewritten to an
// offset reference SRC<s*e_d>.  Chained shifts compose offsets
// (multi-offset arrays: U<+1,-1>).
//
// The algorithm is optimistic and SSA-based: it validates, per shift
// definition, that each reached use observes exactly this definition and
// that SRC's value at the use equals its value at the shift.  Uses that
// cannot be rewritten (phi merges, values live at exit, sources of
// unconverted shifts) are served by an inserted compensation copy — the
// paper's recovery mechanism — so a partially-convertible program is
// still optimized.
#pragma once

#include <string>
#include <vector>

#include "ir/program.hpp"
#include "support/diagnostics.hpp"

namespace hpfsc::passes {

struct OffsetArrayOptions {
  /// Largest |offset| convertible per dimension; bounds overlap width
  /// ("the shift offset is a small constant").
  int max_halo = 3;
  /// Arrays whose final values are observable after the program.  An
  /// empty list means every non-temporary array is live at exit.
  std::vector<std::string> live_out;
};

struct OffsetArrayStats {
  int shifts_converted = 0;   ///< CSHIFTs turned into OVERLAP_CSHIFTs
  int shifts_kept = 0;        ///< left as full shifts
  int copies_inserted = 0;    ///< compensation copies
  int arrays_eliminated = 0;  ///< storage removed entirely
  int uses_rewritten = 0;     ///< references redirected to offset arrays
};

OffsetArrayStats offset_arrays(ir::Program& program,
                               const OffsetArrayOptions& opts,
                               DiagnosticEngine& diags);

}  // namespace hpfsc::passes

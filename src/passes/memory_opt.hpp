// Loop-level memory optimizations (paper Section 3.4): after
// scalarization, subgrid loop nests are tuned for the memory hierarchy:
//   * loop permutation moves the contiguous (first) dimension innermost
//     for unit-stride cache behavior,
//   * unroll-and-jam unrolls the outer loop and jams the copies into the
//     inner loop, creating cross-iteration reuse, and
//   * scalar replacement keeps values referenced by several statement
//     instances in registers, eliminating redundant loads and dead
//     intermediate stores.
// The annotations are honored by the executor's kernel compiler, so
// their effect is measurable, not just cosmetic.
#pragma once

#include "ir/program.hpp"
#include "support/diagnostics.hpp"

namespace hpfsc::passes {

struct MemoryOptOptions {
  bool permute = true;
  bool unroll_jam = true;
  bool scalar_replace = true;
  int unroll_factor = 4;
};

struct MemoryOptStats {
  int nests_permuted = 0;
  int nests_unrolled = 0;
  int nests_scalar_replaced = 0;
};

MemoryOptStats memory_opt(ir::Program& program, const MemoryOptOptions& opts,
                          DiagnosticEngine& diags);

}  // namespace hpfsc::passes

#include "passes/overlap_mark.hpp"

#include <algorithm>
#include <vector>

namespace hpfsc::passes {

namespace {

bool zero_offset(const spmd::Offset& off) {
  return off[0] == 0 && off[1] == 0 && off[2] == 0;
}

/// Reorder-safety of one nest given the arrays the preceding shift run
/// touches.  See the header for why each condition is required.
bool nest_eligible(const spmd::Op& nest, const std::vector<int>& shifted) {
  std::vector<int> stores;
  for (const spmd::Kernel& k : nest.kernels) {
    if (!zero_offset(k.lhs_offset)) return false;
    stores.push_back(k.lhs_array);
  }
  if (stores.empty()) return false;
  for (const spmd::Load& load : nest.loads) {
    if (std::find(stores.begin(), stores.end(), load.array) != stores.end()) {
      return false;
    }
  }
  for (int array : shifted) {
    if (std::find(stores.begin(), stores.end(), array) != stores.end()) {
      return false;
    }
  }
  return true;
}

void mark_ops(std::vector<spmd::Op>& ops, OverlapMarkStats& stats) {
  std::vector<int> shifted;  // arrays of the current OverlapShift run
  for (spmd::Op& op : ops) {
    switch (op.kind) {
      case spmd::OpKind::OverlapShift:
        shifted.push_back(op.array);
        continue;
      case spmd::OpKind::LoopNest:
        if (!shifted.empty()) {
          ++stats.nests_considered;
          if (nest_eligible(op, shifted)) {
            op.overlap_eligible = true;
            ++stats.nests_marked;
          }
        }
        break;
      case spmd::OpKind::If:
        mark_ops(op.then_ops, stats);
        mark_ops(op.else_ops, stats);
        break;
      case spmd::OpKind::Do:
        mark_ops(op.body, stats);
        break;
      default:
        break;
    }
    shifted.clear();
  }
}

}  // namespace

OverlapMarkStats mark_overlap_nests(spmd::Program& program) {
  OverlapMarkStats stats;
  mark_ops(program.ops, stats);
  return stats;
}

}  // namespace hpfsc::passes

#include "passes/scalarize.hpp"

#include <map>
#include <set>

namespace hpfsc::passes {

namespace {

using ir::AffineBound;

class Scalarizer {
 public:
  Scalarizer(ir::Program& program, DiagnosticEngine& diags)
      : prog_(program), diags_(diags) {}

  ScalarizeStats run() {
    process_block(prog_.body);
    return stats_;
  }

 private:
  /// One candidate loop-nest item derived from a statement.
  struct Item {
    int rank = 2;
    std::array<ir::SectionRange, ir::kMaxRank> bounds;
    ir::LoopNestStmt::BodyAssign body;
    std::string dist;  ///< distribution signature for congruence
    bool valid = false;
  };

  void process_block(ir::Block& block) {
    ir::Block out;
    std::unique_ptr<ir::LoopNestStmt> nest;
    std::set<ir::ArrayId> nest_writes;
    std::map<ir::ArrayId, bool> nest_offset_reads;  ///< read w/ offset != 0

    auto flush = [&] {
      if (nest) {
        if (nest->body.size() > 1) {
          stats_.statements_fused += static_cast<int>(nest->body.size());
        }
        ++stats_.nests_created;
        out.push_back(std::move(nest));
        nest.reset();
        nest_writes.clear();
        nest_offset_reads.clear();
      }
    };

    for (ir::StmtPtr& sp : block) {
      Item item;
      switch (sp->kind) {
        case ir::StmtKind::ArrayAssign:
          item = from_assign(static_cast<ir::ArrayAssignStmt&>(*sp));
          break;
        case ir::StmtKind::Copy:
          item = from_copy(static_cast<ir::CopyStmt&>(*sp));
          break;
        case ir::StmtKind::If: {
          auto& iff = static_cast<ir::IfStmt&>(*sp);
          process_block(iff.then_block);
          process_block(iff.else_block);
          flush();
          out.push_back(std::move(sp));
          continue;
        }
        case ir::StmtKind::Do: {
          auto& loop = static_cast<ir::DoStmt&>(*sp);
          process_block(loop.body);
          flush();
          out.push_back(std::move(sp));
          continue;
        }
        default:
          flush();
          out.push_back(std::move(sp));
          continue;
      }
      if (!item.valid) {
        flush();
        out.push_back(std::move(sp));
        continue;
      }
      if (nest && !can_fuse(*nest, item, nest_writes, nest_offset_reads)) {
        flush();
      }
      if (!nest) {
        nest = std::make_unique<ir::LoopNestStmt>();
        nest->loc = sp->loc;
        nest->rank = item.rank;
        nest->bounds = item.bounds;
      }
      // Track fusion-legality state.
      nest_writes.insert(item.body.lhs.array);
      ir::visit_exprs(*item.body.rhs, [&](const ir::Expr& e) {
        if (e.kind == ir::ExprKind::ArrayRefK && e.ref.has_offset()) {
          nest_offset_reads[e.ref.array] = true;
        }
      });
      nest->body.push_back(std::move(item.body));
    }
    flush();
    block = std::move(out);
  }

  Item from_assign(ir::ArrayAssignStmt& s) {
    Item item;
    const ir::ArraySymbol& sym = prog_.symbols.array(s.lhs.array);
    item.rank = sym.rank;
    item.dist = sym.dist_str();
    for (int d = 0; d < sym.rank; ++d) {
      if (s.lhs.whole_array()) {
        item.bounds[d] = ir::SectionRange{AffineBound(1), sym.extent[d]};
      } else {
        item.bounds[d] = s.lhs.section[static_cast<std::size_t>(d)];
      }
    }
    // Element-wise body: sections drop (the bounds carry them), offsets
    // stay.  Misaligned sections should not survive normalization.
    bool ok = true;
    ir::ExprPtr rhs = s.rhs->clone();
    ir::visit_exprs(*rhs, [&](ir::Expr& e) {
      if (e.kind == ir::ExprKind::Shift) ok = false;
      if (e.kind != ir::ExprKind::ArrayRefK) return;
      if (!e.ref.whole_array()) {
        if (!section_matches(e.ref, s.lhs)) ok = false;
        e.ref.section.clear();
      } else if (!s.lhs.whole_array()) {
        // Whole-array operand under a sectioned LHS only aligns when
        // the section covers the full extent.
        if (!covers_whole(s.lhs)) ok = false;
      }
    });
    if (!ok) {
      diags_.error(s.loc,
                   "statement is not in normal form; scalarization "
                   "keeps it unfused");
      return item;
    }
    item.body.lhs = s.lhs;
    item.body.lhs.section.clear();
    item.body.rhs = std::move(rhs);
    item.valid = true;
    return item;
  }

  Item from_copy(ir::CopyStmt& s) {
    Item item;
    const ir::ArraySymbol& sym = prog_.symbols.array(s.dst);
    item.rank = sym.rank;
    item.dist = sym.dist_str();
    for (int d = 0; d < sym.rank; ++d) {
      item.bounds[d] = ir::SectionRange{AffineBound(1), sym.extent[d]};
    }
    item.body.lhs.array = s.dst;
    item.body.rhs = ir::make_array_ref(s.src, s.loc);
    item.valid = true;
    return item;
  }

  bool section_matches(const ir::ArrayRef& ref, const ir::ArrayRef& lhs) {
    if (lhs.whole_array()) return covers_whole(ref);
    return ref.section == lhs.section;
  }

  bool covers_whole(const ir::ArrayRef& ref) {
    if (ref.whole_array()) return true;
    const ir::ArraySymbol& sym = prog_.symbols.array(ref.array);
    for (int d = 0; d < sym.rank; ++d) {
      const ir::SectionRange& r = ref.section[static_cast<std::size_t>(d)];
      if (!(r.lo == AffineBound(1) && r.hi == sym.extent[d])) return false;
    }
    return true;
  }

  bool can_fuse(const ir::LoopNestStmt& nest, const Item& item,
                const std::set<ir::ArrayId>& writes,
                const std::map<ir::ArrayId, bool>& offset_reads) {
    if (nest.rank != item.rank) return false;
    for (int d = 0; d < item.rank; ++d) {
      if (!(nest.bounds[d] == item.bounds[d])) return false;
    }
    // Congruence: identical distribution of the written arrays.
    const ir::ArraySymbol& lhs_sym = prog_.symbols.array(item.body.lhs.array);
    if (lhs_sym.dist_str() != item.dist) return false;
    if (!nest.body.empty()) {
      const ir::ArraySymbol& first =
          prog_.symbols.array(nest.body.front().lhs.array);
      if (first.dist_str() != lhs_sym.dist_str() ||
          first.rank != lhs_sym.rank) {
        return false;
      }
      for (int d = 0; d < first.rank; ++d) {
        if (!(first.extent[d] == lhs_sym.extent[d])) return false;
      }
    }
    // Legality: no loop-carried dependence may be created.
    //  (a) reading an array written earlier in the nest at an offset;
    bool ok = true;
    ir::visit_exprs(*item.body.rhs, [&](const ir::Expr& e) {
      if (e.kind == ir::ExprKind::ArrayRefK && e.ref.has_offset() &&
          writes.contains(e.ref.array)) {
        ok = false;
      }
    });
    //  (b) writing an array that an earlier statement read at an offset.
    auto it = offset_reads.find(item.body.lhs.array);
    if (it != offset_reads.end() && it->second) ok = false;
    return ok;
  }

  ir::Program& prog_;
  DiagnosticEngine& diags_;
  ScalarizeStats stats_;
};

}  // namespace

ScalarizeStats scalarize(ir::Program& program, DiagnosticEngine& diags) {
  return Scalarizer(program, diags).run();
}

}  // namespace hpfsc::passes

// Context partitioning (paper Section 3.2): reorder each straight-line
// run of statements into groups of congruent array statements and
// groups of communication operations, using Kennedy-McKinley typed
// fusion on the acyclic statement-level dependence graph.  Grouping
// compute statements enables maximal (but not over-) loop fusion during
// scalarization; grouping communication enables communication unioning.
#pragma once

#include "ir/program.hpp"
#include "support/diagnostics.hpp"

namespace hpfsc::passes {

struct ContextPartitionStats {
  int groups_formed = 0;
  int statements_moved = 0;  ///< statements whose position changed
};

ContextPartitionStats context_partition(ir::Program& program,
                                        DiagnosticEngine& diags);

}  // namespace hpfsc::passes

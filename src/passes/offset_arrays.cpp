#include "passes/offset_arrays.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <unordered_map>

#include "analysis/array_ssa.hpp"

namespace hpfsc::passes {

namespace {

using analysis::ArraySsa;
using analysis::SsaUse;
using analysis::SsaVersion;
using ir::ArrayId;

using Offset = std::array<int, ir::kMaxRank>;

/// Per-shift decision produced by the planning phase.
struct ShiftPlan {
  bool convert = false;
  bool drop = false;           ///< dead shift: emit nothing
  ArrayId base = -1;           ///< underlying offset-array source
  Offset base_offset{0, 0, 0};
  Offset result_offset{0, 0, 0};
  int base_version = -1;       ///< SSA version of base at the shift
  bool needs_copy = false;     ///< materialize dst after the overlap shift
  const ir::Stmt* producer = nullptr;  ///< shift defining our source
  bool chained = false;        ///< base resolved through the producer
  ArrayId src_copy_base = -1;
  Offset src_copy_offset{0, 0, 0};
  std::vector<const ir::ArrayRef*> rewrites;
};

class OffsetArrayPass {
 public:
  OffsetArrayPass(ir::Program& program, const OffsetArrayOptions& opts,
                  DiagnosticEngine& diags)
      : prog_(program), opts_(opts), diags_(diags) {}

  OffsetArrayStats run() {
    compute_live_out();
    ssa_ = std::make_unique<ArraySsa>(ArraySsa::build(prog_));
    plan();
    resolve_halo_conflicts();
    apply_block(prog_.body);
    rewrite_uses();
    assign_halo_widths();
    eliminate_dead_arrays();
    return stats_;
  }

 private:
  void compute_live_out() {
    if (opts_.live_out.empty()) {
      for (int a = 0; a < prog_.symbols.num_arrays(); ++a) {
        if (!prog_.symbols.array(a).is_temp) live_out_.insert(a);
      }
      return;
    }
    for (const std::string& name : opts_.live_out) {
      if (auto id = prog_.symbols.find_array(name)) {
        live_out_.insert(*id);
      } else {
        diags_.warning({}, "live-out array '" + name + "' is not declared");
      }
    }
  }

  // ------------------------------------------------------- planning --
  void plan() {
    ir::visit_stmts(prog_.body, [&](ir::Stmt& s) {
      if (s.kind == ir::StmtKind::ShiftAssign) {
        plan_shift(static_cast<ir::ShiftAssignStmt&>(s));
      }
    });
  }

  void plan_shift(const ir::ShiftAssignStmt& s) {
    ShiftPlan plan;

    // Resolve the shift source through earlier converted shifts
    // (multi-offset chains).
    plan.base = s.src.array;
    plan.base_offset = s.src.offset;
    plan.base_version = ssa_->use_version(s.src);
    // Whether our source is itself a converted shift (multi-offset
    // chain).  If so, the producer does not materialize its destination
    // for us, so if we end up unconverted we must insert a copy.
    bool cross_kind_chain = false;
    const SsaVersion& src_info =
        ssa_->version_info(s.src.array, plan.base_version);
    if (src_info.kind == SsaVersion::Kind::Def && src_info.def != nullptr &&
        src_info.def->kind == ir::StmtKind::ShiftAssign) {
      auto it = plans_.find(src_info.def);
      if (it != plans_.end() && it->second.convert) {
        const ShiftPlan& producer = it->second;
        // Follow the chain only when the producer's base still holds the
        // same value here; otherwise the producer detected the conflict
        // and already materialized our source via a compensation copy.
        if (ssa_->version_at(s, producer.base) == producer.base_version) {
          const auto& producer_stmt =
              static_cast<const ir::ShiftAssignStmt&>(*src_info.def);
          plan.producer = src_info.def;
          // Offset composition is exact only for circular shifts: an
          // EOSHIFT link puts boundary values at positions the composed
          // view maps to *owned* cells when offsets cancel, and the
          // halo fill kind of one link cannot reproduce the other's
          // values.  A mixed chain keeps the full shift and reads its
          // source through a compensation copy instead.
          if (s.intrinsic == ir::ShiftIntrinsic::CShift &&
              producer_stmt.intrinsic == ir::ShiftIntrinsic::CShift) {
            plan.chained = true;
            plan.base = producer.base;
            plan.base_offset = producer.result_offset;
            plan.base_version = producer.base_version;
          } else {
            cross_kind_chain = true;
          }
          plan.src_copy_base = producer.base;
          plan.src_copy_offset = producer.result_offset;
        }
      }
    }

    plan.result_offset = plan.base_offset;
    plan.result_offset[s.dim] += s.shift;

    // ---- Static criteria ("safe and profitable", paper 3.1) ----------
    bool static_ok = s.shift != 0 && plan.base != s.dst &&
                     prog_.symbols.conformable(s.dst, plan.base);
    for (int d = 0; d < ir::kMaxRank; ++d) {
      if (std::abs(plan.result_offset[d]) > opts_.max_halo) static_ok = false;
    }
    if (s.intrinsic == ir::ShiftIntrinsic::EoShift &&
        (s.boundary == nullptr ||
         s.boundary->kind != ir::ExprKind::Constant)) {
      static_ok = false;  // runtime needs a constant boundary value
    }

    // ---- Use classification ------------------------------------------
    const int v_dst = ssa_->def_version(s);
    int n_rewritable = 0;
    int n_chain = 0;
    bool bad_use = false;
    if (static_ok) {
      for (const SsaUse& u : ssa_->uses_of(s.dst, v_dst)) {
        if (u.ref == nullptr) continue;  // phi operand; handled below
        const bool consistent =
            ssa_->version_at(*u.stmt, plan.base) == plan.base_version;
        if (!consistent) {
          bad_use = true;
          continue;
        }
        switch (u.stmt->kind) {
          case ir::StmtKind::ArrayAssign: {
            const auto& use_stmt =
                static_cast<const ir::ArrayAssignStmt&>(*u.stmt);
            if (u.ref == &use_stmt.lhs) {
              bad_use = true;  // partial update reads dst itself
            } else if (use_stmt.lhs.array == plan.base) {
              // Rewriting would scalarize into a loop that reads
              // base<offset> while writing base — a loop-carried
              // dependence whenever the offset points against the
              // (backend-variant) iteration order.  Keep the temp.
              bad_use = true;
            } else {
              plan.rewrites.push_back(u.ref);
              ++n_rewritable;
            }
            break;
          }
          case ir::StmtKind::ShiftAssign:
            ++n_chain;  // the consumer re-resolves through our plan
            break;
          default:
            bad_use = true;
            break;
        }
      }
    }
    const bool value_escapes =
        ssa_->feeds_phi(s.dst, v_dst) ||
        (live_out_.contains(s.dst) && ssa_->live_at_exit(s.dst, v_dst));
    plan.needs_copy = bad_use || value_escapes;

    const bool used = !ssa_->uses_of(s.dst, v_dst).empty() || value_escapes;
    if (static_ok && !cross_kind_chain &&
        (n_rewritable + n_chain > 0 || !used)) {
      plan.convert = true;
      plan.drop = !used && !plan.needs_copy;
    } else {
      plan.convert = false;
      plan.rewrites.clear();
      plan.needs_copy = false;
    }
    plans_.emplace(&s, std::move(plan));
  }

  /// An array has ONE overlap area per (dimension, direction), so two
  /// converted shifts that fill the same area with different kinds (a
  /// circular wrap vs. an EOSHIFT boundary constant, or two different
  /// boundary constants) cannot coexist once context partitioning fuses
  /// their statement contexts into one communication group.  First
  /// claim in program order wins; later conflicting shifts stay full
  /// shifts.
  void resolve_halo_conflicts() {
    struct Claim {
      ir::ShiftIntrinsic intrinsic;
      const ir::Expr* boundary;
    };
    std::map<std::tuple<ArrayId, int, int, int>, Claim> claims;
    ir::visit_stmts(prog_.body, [&](ir::Stmt& stmt) {
      if (stmt.kind != ir::StmtKind::ShiftAssign) return;
      auto& s = static_cast<ir::ShiftAssignStmt&>(stmt);
      auto it = plans_.find(&stmt);
      if (it == plans_.end() || !it->second.convert) return;
      ShiftPlan& plan = it->second;
      const auto key = std::make_tuple(plan.base, s.dim,
                                       s.shift > 0 ? 1 : 0,
                                       plan.base_version);
      auto [cit, inserted] =
          claims.emplace(key, Claim{s.intrinsic, s.boundary.get()});
      if (inserted) return;
      const Claim& c = cit->second;
      const bool same_boundary =
          c.boundary == nullptr
              ? s.boundary == nullptr
              : s.boundary != nullptr && c.boundary->equals(*s.boundary);
      if (c.intrinsic == s.intrinsic && same_boundary) return;
      plan.convert = false;
      plan.drop = false;
      plan.rewrites.clear();
      plan.needs_copy = false;
    });
    // Demotion cascades: a consumer that resolved its base through a
    // now-demoted producer would read halo cells the producer no longer
    // fills (the conflicting first claim fills them with the *other*
    // kind).  The demoted producer materializes its destination, so the
    // consumer simply keeps its full shift over that.
    bool progress = true;
    while (progress) {
      progress = false;
      for (auto& [stmt, plan] : plans_) {
        (void)stmt;
        if (!plan.convert || !plan.chained) continue;
        if (plans_.at(plan.producer).convert) continue;
        plan.convert = false;
        plan.drop = false;
        plan.rewrites.clear();
        plan.needs_copy = false;
        progress = true;
      }
    }
  }

  // --------------------------------------------------------- apply ----
  static ir::ArrayRef offset_ref(ArrayId array, const Offset& off) {
    ir::ArrayRef ref;
    ref.array = array;
    ref.offset = off;
    return ref;
  }

  void apply_block(ir::Block& block) {
    ir::Block out;
    for (ir::StmtPtr& sp : block) {
      if (auto* iff = dynamic_cast<ir::IfStmt*>(sp.get())) {
        apply_block(iff->then_block);
        apply_block(iff->else_block);
        out.push_back(std::move(sp));
        continue;
      }
      if (auto* loop = dynamic_cast<ir::DoStmt*>(sp.get())) {
        apply_block(loop->body);
        out.push_back(std::move(sp));
        continue;
      }
      if (sp->kind != ir::StmtKind::ShiftAssign) {
        out.push_back(std::move(sp));
        continue;
      }
      auto& s = static_cast<ir::ShiftAssignStmt&>(*sp);
      const ShiftPlan& plan = plans_.at(sp.get());
      // An unconverted shift whose source was converted away (and not
      // already materialized by the producer's own compensation copy)
      // needs that source materialized first.
      bool needs_src_copy = false;
      if (!plan.convert && plan.producer != nullptr) {
        const ShiftPlan& producer = plans_.at(plan.producer);
        needs_src_copy = producer.convert && !producer.needs_copy;
      }
      if (needs_src_copy) {
        auto copy = std::make_unique<ir::CopyStmt>();
        copy->loc = s.loc;
        copy->dst = s.src.array;
        copy->src = offset_ref(plan.src_copy_base, plan.src_copy_offset);
        out.push_back(std::move(copy));
        ++stats_.copies_inserted;
      }
      if (!plan.convert) {
        ++stats_.shifts_kept;
        out.push_back(std::move(sp));
        continue;
      }
      if (plan.drop) continue;  // dead shift
      auto overlap = std::make_unique<ir::OverlapShiftStmt>();
      overlap->loc = s.loc;
      overlap->src = offset_ref(plan.base, plan.base_offset);
      overlap->shift = s.shift;
      overlap->dim = s.dim;
      overlap->shift_kind = s.intrinsic == ir::ShiftIntrinsic::CShift
                                ? ir::ShiftKind::Circular
                                : ir::ShiftKind::EndOff;
      overlap->boundary = s.boundary ? s.boundary->clone() : nullptr;
      out.push_back(std::move(overlap));
      ++stats_.shifts_converted;
      if (plan.needs_copy) {
        auto copy = std::make_unique<ir::CopyStmt>();
        copy->loc = s.loc;
        copy->dst = s.dst;
        copy->src = offset_ref(plan.base, plan.result_offset);
        out.push_back(std::move(copy));
        ++stats_.copies_inserted;
      }
    }
    block = std::move(out);
  }

  void rewrite_uses() {
    for (auto& [stmt, plan] : plans_) {
      (void)stmt;
      if (!plan.convert) continue;
      for (const ir::ArrayRef* use : plan.rewrites) {
        // The SSA analysis exposes refs as const; the pass owns the IR
        // and may mutate them.
        auto* ref = const_cast<ir::ArrayRef*>(use);
        ref->array = plan.base;
        ref->offset = plan.result_offset;
        ++stats_.uses_rewritten;
      }
    }
  }

  // ----------------------------------------------- post-processing ----
  void assign_halo_widths() {
    auto widen = [&](const ir::ArrayRef& ref) {
      ir::ArraySymbol& sym = prog_.symbols.array(ref.array);
      for (int d = 0; d < sym.rank; ++d) {
        if (ref.offset[d] > 0) {
          sym.halo_hi[d] = std::max(sym.halo_hi[d], ref.offset[d]);
        } else if (ref.offset[d] < 0) {
          sym.halo_lo[d] = std::max(sym.halo_lo[d], -ref.offset[d]);
        }
      }
    };
    ir::visit_stmts(prog_.body, [&](ir::Stmt& s) {
      switch (s.kind) {
        case ir::StmtKind::ArrayAssign: {
          auto& stmt = static_cast<ir::ArrayAssignStmt&>(s);
          ir::visit_exprs(*stmt.rhs, [&](ir::Expr& e) {
            if (e.kind == ir::ExprKind::ArrayRefK) widen(e.ref);
          });
          break;
        }
        case ir::StmtKind::Copy:
          widen(static_cast<ir::CopyStmt&>(s).src);
          break;
        case ir::StmtKind::OverlapShift: {
          auto& stmt = static_cast<ir::OverlapShiftStmt&>(s);
          widen(stmt.src);
          ir::ArraySymbol& sym = prog_.symbols.array(stmt.src.array);
          if (stmt.shift > 0) {
            sym.halo_hi[stmt.dim] =
                std::max(sym.halo_hi[stmt.dim], stmt.shift);
          } else {
            sym.halo_lo[stmt.dim] =
                std::max(sym.halo_lo[stmt.dim], -stmt.shift);
          }
          break;
        }
        default:
          break;
      }
    });
  }

  void eliminate_dead_arrays() {
    std::set<ArrayId> referenced;
    ir::visit_stmts(prog_.body, [&](ir::Stmt& s) {
      switch (s.kind) {
        case ir::StmtKind::ArrayAssign: {
          auto& stmt = static_cast<ir::ArrayAssignStmt&>(s);
          referenced.insert(stmt.lhs.array);
          ir::visit_exprs(*stmt.rhs, [&](ir::Expr& e) {
            if (e.kind == ir::ExprKind::ArrayRefK) {
              referenced.insert(e.ref.array);
            }
          });
          break;
        }
        case ir::StmtKind::ShiftAssign: {
          auto& stmt = static_cast<ir::ShiftAssignStmt&>(s);
          referenced.insert(stmt.dst);
          referenced.insert(stmt.src.array);
          break;
        }
        case ir::StmtKind::OverlapShift:
          referenced.insert(
              static_cast<ir::OverlapShiftStmt&>(s).src.array);
          break;
        case ir::StmtKind::Copy: {
          auto& stmt = static_cast<ir::CopyStmt&>(s);
          referenced.insert(stmt.dst);
          referenced.insert(stmt.src.array);
          break;
        }
        case ir::StmtKind::LoopNest: {
          auto& nest = static_cast<ir::LoopNestStmt&>(s);
          for (auto& b : nest.body) {
            referenced.insert(b.lhs.array);
            ir::visit_exprs(*b.rhs, [&](ir::Expr& e) {
              if (e.kind == ir::ExprKind::ArrayRefK) {
                referenced.insert(e.ref.array);
              }
            });
          }
          break;
        }
        default:
          break;
      }
    });
    std::set<ArrayId> eliminated;
    for (int a = 0; a < prog_.symbols.num_arrays(); ++a) {
      ir::ArraySymbol& sym = prog_.symbols.array(a);
      if (sym.eliminated) continue;
      if (referenced.contains(a)) continue;
      if (live_out_.contains(a)) continue;
      sym.eliminated = true;
      eliminated.insert(a);
      ++stats_.arrays_eliminated;
    }
    if (eliminated.empty()) return;
    // Strip eliminated arrays from ALLOCATE/DEALLOCATE lists and drop
    // statements that became empty.
    strip_allocs(prog_.body, eliminated);
  }

  static void strip_allocs(ir::Block& block,
                           const std::set<ArrayId>& eliminated) {
    for (ir::StmtPtr& sp : block) {
      if (auto* alloc = dynamic_cast<ir::AllocStmt*>(sp.get())) {
        std::erase_if(alloc->arrays,
                      [&](ArrayId a) { return eliminated.contains(a); });
      } else if (auto* free = dynamic_cast<ir::FreeStmt*>(sp.get())) {
        std::erase_if(free->arrays,
                      [&](ArrayId a) { return eliminated.contains(a); });
      } else if (auto* iff = dynamic_cast<ir::IfStmt*>(sp.get())) {
        strip_allocs(iff->then_block, eliminated);
        strip_allocs(iff->else_block, eliminated);
      } else if (auto* loop = dynamic_cast<ir::DoStmt*>(sp.get())) {
        strip_allocs(loop->body, eliminated);
      }
    }
    std::erase_if(block, [](const ir::StmtPtr& sp) {
      if (const auto* alloc = dynamic_cast<const ir::AllocStmt*>(sp.get())) {
        return alloc->arrays.empty();
      }
      if (const auto* free = dynamic_cast<const ir::FreeStmt*>(sp.get())) {
        return free->arrays.empty();
      }
      return false;
    });
  }

  ir::Program& prog_;
  const OffsetArrayOptions& opts_;
  DiagnosticEngine& diags_;
  OffsetArrayStats stats_;
  std::set<ArrayId> live_out_;
  std::unique_ptr<ArraySsa> ssa_;
  std::unordered_map<const ir::Stmt*, ShiftPlan> plans_;
};

}  // namespace

OffsetArrayStats offset_arrays(ir::Program& program,
                               const OffsetArrayOptions& opts,
                               DiagnosticEngine& diags) {
  return OffsetArrayPass(program, opts, diags).run();
}

}  // namespace hpfsc::passes

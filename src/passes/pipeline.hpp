// The orchestrated optimization pipeline (paper Section 3): given a
// lowered program, applies
//   normalize -> offset arrays -> context partitioning ->
//   communication unioning -> scalarization -> memory optimizations
// under a set of options corresponding to the paper's step-wise
// evaluation levels (Figure 17), capturing a pretty-printed listing
// after each phase (the paper's Figures 12-16).
#pragma once

#include <string>
#include <vector>

#include "ir/program.hpp"
#include "obs/obs.hpp"
#include "passes/comm_unioning.hpp"
#include "passes/context_partition.hpp"
#include "passes/memory_opt.hpp"
#include "passes/normalize.hpp"
#include "passes/offset_arrays.hpp"
#include "passes/scalarize.hpp"
#include "support/diagnostics.hpp"

namespace hpfsc::passes {

struct PassOptions {
  bool offset_arrays = true;
  bool context_partition = true;
  bool comm_unioning = true;
  bool memory_opt = true;

  NormalizeOptions normalize{};
  OffsetArrayOptions offset{};
  MemoryOptOptions memory{};

  /// The paper's step-wise levels:
  ///   O0 naive translation (normalize + per-statement scalarization)
  ///   O1 +offset arrays, O2 +context partitioning,
  ///   O3 +communication unioning, O4 +memory optimizations.
  static PassOptions level(int n);
};

struct PhaseListing {
  std::string phase;  ///< e.g. "normalize"
  std::string code;   ///< pretty-printed program body after the phase
};

struct PipelineResult {
  std::vector<PhaseListing> listings;
  NormalizeStats normalize;
  OffsetArrayStats offset;
  ContextPartitionStats partition;
  CommUnioningStats unioning;
  ScalarizeStats scalarize;
  MemoryOptStats memory;
};

/// Runs the pipeline.  When `trace` is an enabled obs session, each
/// pass is wrapped in a "pass/<name>" span on the host track carrying
/// wall time plus the pass's IR delta (statements in/out, shifts
/// converted/eliminated, temporaries created/removed, ...) — the
/// -ftime-trace analogue for this compiler.
PipelineResult run_pipeline(ir::Program& program, const PassOptions& opts,
                            DiagnosticEngine& diags,
                            obs::TraceSession* trace = nullptr);

}  // namespace hpfsc::passes

#include "passes/comm_unioning.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <vector>

namespace hpfsc::passes {

namespace {

/// Accumulated overlap requirements for one (array, shift kind,
/// boundary) combination within a communication group.
struct Requirements {
  // amount[d][0] = largest negative-direction shift, [d][1] = positive.
  std::array<std::array<int, 2>, ir::kMaxRank> amount{};
  // rsd[d][dir] = RSD extension carried by the (d, dir) shift.
  std::array<std::array<ir::Rsd, 2>, ir::kMaxRank> rsd{};
  ir::ExprPtr boundary;  // representative EOSHIFT boundary (cloned)
  SourceLoc loc;
};

/// Group key: array + shift kind + boundary equivalence class (EOSHIFT
/// shifts with different boundary expressions must not merge, or one
/// fill value would silently overwrite the other).
struct GroupKey {
  ir::ArrayId array;
  ir::ShiftKind kind;
  int boundary_class;

  bool operator<(const GroupKey& o) const {
    return std::tie(array, kind, boundary_class) <
           std::tie(o.array, o.kind, o.boundary_class);
  }
};

/// Assigns boundary expressions to classes by structural equality, in
/// first-appearance order within one communication group (keeps the
/// emission order deterministic).  A missing boundary (CSHIFT) is its
/// own class.
int boundary_class(const ir::Expr* b, std::vector<const ir::Expr*>& reps) {
  for (std::size_t k = 0; k < reps.size(); ++k) {
    const ir::Expr* rep = reps[k];
    if (b == nullptr ? rep == nullptr
                     : rep != nullptr && b->equals(*rep)) {
      return static_cast<int>(k);
    }
  }
  reps.push_back(b);
  return static_cast<int>(reps.size()) - 1;
}

/// Overlap depth each (dim, dir) of one array already receives from the
/// shifts of a communication group run, regardless of shift kind.  Used
/// to decide whether a chained view's cross-dimension base offset needs
/// its own shift: normally the producing shift is in the same run and
/// covers it, and charging it again here would use *this* shift's kind
/// and boundary — an EOSHIFT fill clobbering a CSHIFT's circular halo.
struct Coverage {
  std::array<std::array<int, 2>, ir::kMaxRank> depth{};

  void note(const ir::OverlapShiftStmt& s) {
    const int dir = s.shift > 0 ? 1 : 0;
    int d = std::abs(s.shift);
    const int base = s.src.offset[s.dim];
    if (base != 0 && (base > 0) == (s.shift > 0)) d += std::abs(base);
    depth[s.dim][dir] = std::max(depth[s.dim][dir], d);
  }

  bool covers(int dim, int dir, int amount) const {
    return depth[dim][dir] >= amount;
  }
};

void accumulate(Requirements& req, const ir::OverlapShiftStmt& s,
                const Coverage& cover) {
  const int dir = s.shift > 0 ? 1 : 0;
  const int d = s.dim;
  // A chained shift's own-dimension base offset deepens the overlap
  // requirement: shifting a view already displaced by `base` needs
  // cells out to base + shift.
  int depth = std::abs(s.shift);
  const int base = s.src.offset[d];
  if (base != 0 && (base > 0) == (s.shift > 0)) depth += std::abs(base);
  req.amount[d][dir] = std::max(req.amount[d][dir], depth);
  if (req.loc == SourceLoc{}) req.loc = s.loc;
  if (s.boundary && !req.boundary) req.boundary = s.boundary->clone();

  // A multi-offset source (paper: "we discover four multi-offset
  // arrays") induces corner requirements between the shifted dimension
  // and every offset dimension.  The corner data rides on the shift of
  // the *higher* dimension of each pair as an RSD extension, picking up
  // values the lower dimension's shift already placed in the overlap
  // area.  Pre-existing RSDs are merged the same way (larger subsumes).
  for (int dd = 0; dd < ir::kMaxRank; ++dd) {
    if (dd == d) continue;
    const int off = s.src.offset[dd];
    if (off != 0) {
      const int odir = off > 0 ? 1 : 0;
      // Base requirement implied by the annotation — unless another
      // shift in this run (typically the one that produced the view)
      // already fills that overlap area.
      if (!cover.covers(dd, odir, std::abs(off))) {
        req.amount[dd][odir] = std::max(req.amount[dd][odir], std::abs(off));
      }
      if (dd < d) {
        // RSD on our own (d, dir) shift, extended in dimension dd.
        auto& ext = req.rsd[d][dir];
        (off > 0 ? ext.hi : ext.lo)[dd] =
            std::max((off > 0 ? ext.hi : ext.lo)[dd], std::abs(off));
      } else {
        // dd > d: commutativity — reorder so the lower dimension (d)
        // shifts first and the higher (dd) shift carries the corner.
        auto& ext = req.rsd[dd][odir];
        (s.shift > 0 ? ext.hi : ext.lo)[d] =
            std::max((s.shift > 0 ? ext.hi : ext.lo)[d], std::abs(s.shift));
      }
    }
    // Merge any RSD the shift already carries (re-running the pass or
    // hand-written normal form input).
    auto& ext = req.rsd[d][dir];
    ext.lo[dd] = std::max(ext.lo[dd], s.rsd.lo[dd]);
    ext.hi[dd] = std::max(ext.hi[dd], s.rsd.hi[dd]);
  }
}

}  // namespace

CommUnioningStats comm_unioning(ir::Program& program,
                                DiagnosticEngine& diags) {
  (void)diags;
  CommUnioningStats stats;

  // Recursive block rewrite.
  struct Walker {
    ir::Program& prog;
    CommUnioningStats& stats;

    void walk(ir::Block& block) {
      ir::Block out;
      std::size_t i = 0;
      while (i < block.size()) {
        if (block[i]->kind != ir::StmtKind::OverlapShift) {
          if (auto* iff = dynamic_cast<ir::IfStmt*>(block[i].get())) {
            walk(iff->then_block);
            walk(iff->else_block);
          } else if (auto* loop =
                         dynamic_cast<ir::DoStmt*>(block[i].get())) {
            walk(loop->body);
          }
          out.push_back(std::move(block[i]));
          ++i;
          continue;
        }
        // Maximal run of overlap shifts = one communication group.
        std::size_t j = i;
        while (j < block.size() &&
               block[j]->kind == ir::StmtKind::OverlapShift) {
          ++j;
        }
        std::map<ir::ArrayId, Coverage> cover;
        for (std::size_t k = i; k < j; ++k) {
          const auto& s =
              static_cast<const ir::OverlapShiftStmt&>(*block[k]);
          cover[s.src.array].note(s);
        }
        std::map<GroupKey, Requirements> groups;
        std::vector<const ir::Expr*> boundary_reps;
        for (std::size_t k = i; k < j; ++k) {
          const auto& s =
              static_cast<const ir::OverlapShiftStmt&>(*block[k]);
          ++stats.shifts_before;
          GroupKey key{s.src.array, s.shift_kind,
                       boundary_class(s.boundary.get(), boundary_reps)};
          accumulate(groups[key], s, cover[s.src.array]);
        }
        // Emit the unioned shifts: dimension ascending, negative first.
        for (auto& [key, req] : groups) {
          const int rank = prog.symbols.array(key.array).rank;
          for (int d = 0; d < rank; ++d) {
            for (int dir = 0; dir < 2; ++dir) {
              if (req.amount[d][dir] == 0) continue;
              auto shift = std::make_unique<ir::OverlapShiftStmt>();
              shift->loc = req.loc;
              shift->src.array = key.array;
              shift->shift =
                  dir == 1 ? req.amount[d][dir] : -req.amount[d][dir];
              shift->dim = d;
              shift->rsd = req.rsd[d][dir];
              shift->shift_kind = key.kind;
              shift->boundary =
                  req.boundary ? req.boundary->clone() : nullptr;
              out.push_back(std::move(shift));
              ++stats.shifts_after;
            }
          }
        }
        i = j;
      }
      block = std::move(out);
    }
  };

  Walker{program, stats}.walk(program.body);
  return stats;
}

}  // namespace hpfsc::passes

#include "passes/pipeline.hpp"

#include "ir/printer.hpp"

namespace hpfsc::passes {

PassOptions PassOptions::level(int n) {
  PassOptions o;
  o.offset_arrays = n >= 1;
  o.context_partition = n >= 2;
  o.comm_unioning = n >= 3;
  o.memory_opt = n >= 4;
  return o;
}

PipelineResult run_pipeline(ir::Program& program, const PassOptions& opts,
                            DiagnosticEngine& diags) {
  PipelineResult result;
  auto snapshot = [&](const char* phase) {
    result.listings.push_back(
        PhaseListing{phase, ir::Printer(program).print_body()});
  };

  result.normalize = normalize(program, opts.normalize, diags);
  snapshot("normalize");
  if (diags.has_errors()) return result;

  if (opts.offset_arrays) {
    result.offset = offset_arrays(program, opts.offset, diags);
    snapshot("offset-arrays");
    if (diags.has_errors()) return result;
  }
  if (opts.context_partition) {
    result.partition = context_partition(program, diags);
    snapshot("context-partitioning");
    if (diags.has_errors()) return result;
  }
  if (opts.comm_unioning) {
    result.unioning = comm_unioning(program, diags);
    snapshot("communication-unioning");
    if (diags.has_errors()) return result;
  }
  result.scalarize = scalarize(program, diags);
  snapshot("scalarization");
  if (diags.has_errors()) return result;

  if (opts.memory_opt) {
    result.memory = memory_opt(program, opts.memory, diags);
    snapshot("memory-optimization");
  }
  return result;
}

}  // namespace hpfsc::passes

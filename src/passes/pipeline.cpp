#include "passes/pipeline.hpp"

#include "ir/printer.hpp"

namespace hpfsc::passes {

PassOptions PassOptions::level(int n) {
  PassOptions o;
  o.offset_arrays = n >= 1;
  o.context_partition = n >= 2;
  o.comm_unioning = n >= 3;
  o.memory_opt = n >= 4;
  return o;
}

namespace {

int count_stmts(const ir::Program& program) {
  int n = 0;
  ir::visit_stmts(program.body, [&](const ir::Stmt&) { ++n; });
  return n;
}

/// Wraps one pass invocation: a "pass/<name>" span carrying wall time
/// and the statement-count delta; the callback adds pass-specific args.
template <typename Fn>
void timed_pass(obs::TraceSession* trace, const char* name,
                ir::Program& program, Fn&& fn) {
  obs::Span span(trace, name, "compile");
  const int before = span.active() ? count_stmts(program) : 0;
  fn(span);
  if (span.active()) {
    span.arg("stmts_in", before);
    span.arg("stmts_out", count_stmts(program));
  }
}

}  // namespace

PipelineResult run_pipeline(ir::Program& program, const PassOptions& opts,
                            DiagnosticEngine& diags,
                            obs::TraceSession* trace) {
  PipelineResult result;
  auto snapshot = [&](const char* phase) {
    result.listings.push_back(
        PhaseListing{phase, ir::Printer(program).print_body()});
  };

  timed_pass(trace, "pass/normalize", program, [&](obs::Span& span) {
    result.normalize = normalize(program, opts.normalize, diags);
    span.arg("shifts_hoisted", result.normalize.shifts_hoisted);
    span.arg("sections_converted", result.normalize.sections_converted);
    span.arg("temps_created", result.normalize.temps_created);
  });
  snapshot("normalize");
  if (diags.has_errors()) return result;

  if (opts.offset_arrays) {
    timed_pass(trace, "pass/offset-arrays", program, [&](obs::Span& span) {
      result.offset = offset_arrays(program, opts.offset, diags);
      span.arg("shifts_converted", result.offset.shifts_converted);
      span.arg("shifts_kept", result.offset.shifts_kept);
      span.arg("copies_inserted", result.offset.copies_inserted);
      span.arg("arrays_eliminated", result.offset.arrays_eliminated);
      span.arg("uses_rewritten", result.offset.uses_rewritten);
    });
    snapshot("offset-arrays");
    if (diags.has_errors()) return result;
  }
  if (opts.context_partition) {
    timed_pass(trace, "pass/context-partitioning", program,
               [&](obs::Span& span) {
      result.partition = context_partition(program, diags);
      span.arg("groups_formed", result.partition.groups_formed);
      span.arg("statements_moved", result.partition.statements_moved);
    });
    snapshot("context-partitioning");
    if (diags.has_errors()) return result;
  }
  if (opts.comm_unioning) {
    timed_pass(trace, "pass/communication-unioning", program,
               [&](obs::Span& span) {
      result.unioning = comm_unioning(program, diags);
      span.arg("shifts_before", result.unioning.shifts_before);
      span.arg("shifts_after", result.unioning.shifts_after);
      span.arg("shifts_eliminated",
               result.unioning.shifts_before - result.unioning.shifts_after);
    });
    snapshot("communication-unioning");
    if (diags.has_errors()) return result;
  }
  timed_pass(trace, "pass/scalarization", program, [&](obs::Span& span) {
    result.scalarize = scalarize(program, diags);
    span.arg("nests_created", result.scalarize.nests_created);
    span.arg("statements_fused", result.scalarize.statements_fused);
  });
  snapshot("scalarization");
  if (diags.has_errors()) return result;

  if (opts.memory_opt) {
    timed_pass(trace, "pass/memory-optimization", program,
               [&](obs::Span& span) {
      result.memory = memory_opt(program, opts.memory, diags);
      span.arg("nests_permuted", result.memory.nests_permuted);
      span.arg("nests_unrolled", result.memory.nests_unrolled);
      span.arg("nests_scalar_replaced", result.memory.nests_scalar_replaced);
    });
    snapshot("memory-optimization");
  }
  return result;
}

}  // namespace hpfsc::passes

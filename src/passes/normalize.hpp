// Program normalization (paper Section 2.1): translate every stencil —
// array-syntax or CSHIFT-based, single- or multi-statement — into the
// normal form:
//   * every CSHIFT/EOSHIFT occurs as a singleton whole-array assignment
//     (shift subexpressions are hoisted into compiler temporaries), and
//   * the remaining compute expressions operate on perfectly aligned
//     operands (misaligned array-syntax sections become shift chains).
//
// This is the CM-Fortran-style translation of Figure 4 and the first
// step of every compilation level.
#pragma once

#include "ir/program.hpp"
#include "support/diagnostics.hpp"

namespace hpfsc::passes {

struct NormalizeOptions {
  /// Reuse temporaries whose live ranges do not overlap (paper Section
  /// 4.1: Problem 9 needs one shared compiler temporary).  Disabled in
  /// the xlhpf-like baseline, which allocates one temporary per CSHIFT
  /// (the Figure 11 memory blowup).
  bool reuse_temps = true;
};

struct NormalizeStats {
  int shifts_hoisted = 0;      ///< shift subexpressions given temporaries
  int sections_converted = 0;  ///< misaligned sections turned into shifts
  int temps_created = 0;       ///< distinct temporaries allocated
};

NormalizeStats normalize(ir::Program& program, const NormalizeOptions& opts,
                         DiagnosticEngine& diags);

}  // namespace hpfsc::passes

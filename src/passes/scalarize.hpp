// Scalarization and loop fusion (paper Sections 2.2 and 3.2): converts
// array assignments (and compensation copies) into subgrid loop nests,
// fusing adjacent congruent statements into a single nest when fusion is
// legal.  Fusion legality prevents over-fusion-induced wrong answers:
// a statement may join a nest only if every cross-statement dependence
// inside the nest is at the same iteration point (offset 0).
#pragma once

#include "ir/program.hpp"
#include "support/diagnostics.hpp"

namespace hpfsc::passes {

struct ScalarizeStats {
  int nests_created = 0;
  int statements_fused = 0;  ///< statements placed into a shared nest
};

ScalarizeStats scalarize(ir::Program& program, DiagnosticEngine& diags);

}  // namespace hpfsc::passes

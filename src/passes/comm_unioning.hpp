// Communication unioning (paper Section 3.3): within each group of
// adjacent OVERLAP_CSHIFT calls, exploit commutativity and subsumption
// to reduce interprocessor data movement to a single message per
// direction per dimension:
//   * shifts over the same (dimension, direction) are merged, keeping
//     the largest amount (larger shifts subsume smaller ones), and
//   * multi-offset arrays ("corner" elements of stencils) are carried by
//     attaching an RSD to the shift of the higher dimension, which then
//     forwards data already present in the lower dimension's overlap
//     areas (Figures 6-10).
// Emitted shifts are canonically ordered: dimension ascending, negative
// direction first.
#pragma once

#include "ir/program.hpp"
#include "support/diagnostics.hpp"

namespace hpfsc::passes {

struct CommUnioningStats {
  int shifts_before = 0;
  int shifts_after = 0;
};

CommUnioningStats comm_unioning(ir::Program& program,
                                DiagnosticEngine& diags);

}  // namespace hpfsc::passes

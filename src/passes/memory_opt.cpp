#include "passes/memory_opt.hpp"

#include <array>
#include <set>
#include <utility>

namespace hpfsc::passes {

namespace {

using Location = std::pair<ir::ArrayId, std::array<int, ir::kMaxRank>>;

/// True when scalar replacement can actually forward at least one value
/// in this nest.  Mirrors the executor's register-forwarding rules
/// (build_kernel_plan): walking the unroll copies in order, a load of an
/// (array, absolute offset) location that was already loaded or stored
/// is forwarded from a register, and a repeated store to the same
/// location eliminates the earlier (dead) store.  Unroll-and-jam
/// replication shifts every offset along the unrolled (outermost)
/// dimension, so reuse between unroll copies counts too.
bool nest_can_forward(const ir::LoopNestStmt& nest) {
  const int width = nest.unroll_jam > 1 ? nest.unroll_jam : 1;
  const int unroll_dim = nest.loop_order[0];
  std::set<Location> seen;    // loaded or stored locations
  std::set<Location> stored;  // stored locations
  for (int u = 0; u < width; ++u) {
    for (const ir::LoopNestStmt::BodyAssign& assign : nest.body) {
      bool reuse = false;
      ir::visit_exprs(*assign.rhs, [&](const ir::Expr& e) {
        if (e.kind != ir::ExprKind::ArrayRefK) return;
        auto off = e.ref.offset;
        off[unroll_dim] += u;
        if (!seen.insert({e.ref.array, off}).second) reuse = true;
      });
      if (reuse) return true;
      auto off = assign.lhs.offset;
      off[unroll_dim] += u;
      if (!stored.insert({assign.lhs.array, off}).second) return true;
      seen.insert({assign.lhs.array, off});
    }
  }
  return false;
}

}  // namespace

MemoryOptStats memory_opt(ir::Program& program, const MemoryOptOptions& opts,
                          DiagnosticEngine& diags) {
  (void)diags;
  MemoryOptStats stats;
  ir::visit_stmts(program.body, [&](ir::Stmt& s) {
    if (s.kind != ir::StmtKind::LoopNest) return;
    auto& nest = static_cast<ir::LoopNestStmt&>(s);
    if (opts.permute && nest.rank >= 2) {
      // Outermost-first order {rank-1, ..., 1, 0}: the contiguous
      // dimension (0) iterates innermost.  Only counted as an
      // optimization when the order actually changes (re-running the
      // pass must not inflate the statistics).
      auto order = nest.loop_order;
      for (int n = 0; n < nest.rank; ++n) {
        order[static_cast<std::size_t>(n)] = nest.rank - 1 - n;
      }
      if (order != nest.loop_order) {
        nest.loop_order = order;
        ++stats.nests_permuted;
      }
    }
    if (opts.unroll_jam && nest.rank >= 2 && opts.unroll_factor > 1) {
      nest.unroll_jam = opts.unroll_factor;
      ++stats.nests_unrolled;
    }
    if (opts.scalar_replace && nest_can_forward(nest)) {
      nest.scalar_replaced = true;
      ++stats.nests_scalar_replaced;
    }
  });
  return stats;
}

}  // namespace hpfsc::passes

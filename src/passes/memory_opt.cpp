#include "passes/memory_opt.hpp"

namespace hpfsc::passes {

MemoryOptStats memory_opt(ir::Program& program, const MemoryOptOptions& opts,
                          DiagnosticEngine& diags) {
  (void)diags;
  MemoryOptStats stats;
  ir::visit_stmts(program.body, [&](ir::Stmt& s) {
    if (s.kind != ir::StmtKind::LoopNest) return;
    auto& nest = static_cast<ir::LoopNestStmt&>(s);
    if (opts.permute && nest.rank >= 2) {
      // Outermost-first order {rank-1, ..., 1, 0}: the contiguous
      // dimension (0) iterates innermost.
      for (int n = 0; n < nest.rank; ++n) {
        nest.loop_order[static_cast<std::size_t>(n)] = nest.rank - 1 - n;
      }
      ++stats.nests_permuted;
    }
    if (opts.unroll_jam && nest.rank >= 2 && opts.unroll_factor > 1) {
      nest.unroll_jam = opts.unroll_factor;
      ++stats.nests_unrolled;
    }
    if (opts.scalar_replace) {
      nest.scalar_replaced = true;
      ++stats.nests_scalar_replaced;
    }
  });
  return stats;
}

}  // namespace hpfsc::passes

#include "ir/program.hpp"

namespace hpfsc::ir {

Program Program::clone() const {
  Program out;
  out.name = name;
  out.symbols = symbols;
  out.body = clone_block(body);
  return out;
}

void visit_stmts(Block& b, const std::function<void(Stmt&)>& fn) {
  for (StmtPtr& s : b) {
    fn(*s);
    if (auto* iff = dynamic_cast<IfStmt*>(s.get())) {
      visit_stmts(iff->then_block, fn);
      visit_stmts(iff->else_block, fn);
    } else if (auto* loop = dynamic_cast<DoStmt*>(s.get())) {
      visit_stmts(loop->body, fn);
    }
  }
}

void visit_stmts(const Block& b, const std::function<void(const Stmt&)>& fn) {
  for (const StmtPtr& s : b) {
    fn(*s);
    if (const auto* iff = dynamic_cast<const IfStmt*>(s.get())) {
      visit_stmts(iff->then_block, fn);
      visit_stmts(iff->else_block, fn);
    } else if (const auto* loop = dynamic_cast<const DoStmt*>(s.get())) {
      visit_stmts(loop->body, fn);
    }
  }
}

}  // namespace hpfsc::ir

#include "ir/stmt.hpp"

namespace hpfsc::ir {

namespace {
template <typename T>
std::unique_ptr<T> base_copy(const T& src) {
  auto out = std::make_unique<T>();
  out->loc = src.loc;
  return out;
}
}  // namespace

StmtPtr ArrayAssignStmt::clone() const {
  auto out = base_copy(*this);
  out->lhs = lhs;
  out->rhs = rhs ? rhs->clone() : nullptr;
  return out;
}

StmtPtr ShiftAssignStmt::clone() const {
  auto out = base_copy(*this);
  out->dst = dst;
  out->src = src;
  out->shift = shift;
  out->dim = dim;
  out->intrinsic = intrinsic;
  out->boundary = boundary ? boundary->clone() : nullptr;
  return out;
}

StmtPtr OverlapShiftStmt::clone() const {
  auto out = base_copy(*this);
  out->src = src;
  out->shift = shift;
  out->dim = dim;
  out->rsd = rsd;
  out->shift_kind = shift_kind;
  out->boundary = boundary ? boundary->clone() : nullptr;
  return out;
}

StmtPtr CopyStmt::clone() const {
  auto out = base_copy(*this);
  out->dst = dst;
  out->src = src;
  return out;
}

StmtPtr AllocStmt::clone() const {
  auto out = base_copy(*this);
  out->arrays = arrays;
  return out;
}

StmtPtr FreeStmt::clone() const {
  auto out = base_copy(*this);
  out->arrays = arrays;
  return out;
}

StmtPtr ScalarAssignStmt::clone() const {
  auto out = base_copy(*this);
  out->scalar = scalar;
  out->rhs = rhs ? rhs->clone() : nullptr;
  return out;
}

StmtPtr IfStmt::clone() const {
  auto out = base_copy(*this);
  out->cond = cond ? cond->clone() : nullptr;
  out->then_block = clone_block(then_block);
  out->else_block = clone_block(else_block);
  return out;
}

StmtPtr DoStmt::clone() const {
  auto out = base_copy(*this);
  out->var = var;
  out->lo = lo;
  out->hi = hi;
  out->body = clone_block(body);
  return out;
}

StmtPtr LoopNestStmt::clone() const {
  auto out = base_copy(*this);
  out->rank = rank;
  out->bounds = bounds;
  out->body.reserve(body.size());
  for (const BodyAssign& b : body) out->body.push_back(b.clone());
  out->loop_order = loop_order;
  out->unroll_jam = unroll_jam;
  out->scalar_replaced = scalar_replaced;
  return out;
}

Block clone_block(const Block& b) {
  Block out;
  out.reserve(b.size());
  for (const StmtPtr& s : b) out.push_back(s->clone());
  return out;
}

}  // namespace hpfsc::ir

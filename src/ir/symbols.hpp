// Symbol table for the normalized intermediate form: scalar symbols
// (coefficients, size parameters, loop variables) and array symbols with
// their HPF distributions and compiler-assigned overlap-area widths.
#pragma once

#include <array>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "simpi/layout.hpp"
#include "support/source_location.hpp"

namespace hpfsc::ir {

using simpi::DistKind;
using simpi::kMaxRank;

/// An affine bound of the form `param + constant` (param may be absent,
/// leaving a literal).  Array extents, section bounds, and DO-loop bounds
/// are all affine in a single size parameter, which is all the paper's
/// kernels need (e.g. N-1).
struct AffineBound {
  std::string param;  ///< empty for a literal
  int constant = 0;

  AffineBound() = default;
  explicit AffineBound(int literal) : constant(literal) {}
  AffineBound(std::string p, int c) : param(std::move(p)), constant(c) {}

  [[nodiscard]] bool is_literal() const { return param.empty(); }

  [[nodiscard]] AffineBound plus(int delta) const {
    return AffineBound{param, constant + delta};
  }

  /// lhs - rhs when they share a parameter (or are both literals).
  [[nodiscard]] static std::optional<int> difference(const AffineBound& lhs,
                                                     const AffineBound& rhs) {
    if (lhs.param != rhs.param) return std::nullopt;
    return lhs.constant - rhs.constant;
  }

  /// Renders "N-1", "N", "2", "N+1".
  [[nodiscard]] std::string str() const;

  bool operator==(const AffineBound&) const = default;
};

/// One dimension of an array section: lo:hi (stride 1; HPF strided
/// sections are outside the stencil normal form).
struct SectionRange {
  AffineBound lo;
  AffineBound hi;

  bool operator==(const SectionRange&) const = default;
};

enum class ScalarType { Real, Integer };

/// A scalar symbol: stencil coefficient (Real), size parameter or loop
/// variable (Integer).
struct ScalarSymbol {
  std::string name;
  ScalarType type = ScalarType::Real;
  bool is_param = false;  ///< bound at execution time (N, C1, ...)
  std::optional<double> init;  ///< PARAMETER value or declared initializer
};

/// An array symbol.  Extents are affine; lower bounds are always 1.
/// `halo_lo`/`halo_hi` are the overlap-area widths assigned by the
/// offset-array optimization (0 until then).
struct ArraySymbol {
  std::string name;
  int rank = 2;
  std::array<AffineBound, kMaxRank> extent;
  std::array<DistKind, kMaxRank> dist{DistKind::Block, DistKind::Block,
                                      DistKind::Collapsed};
  bool is_temp = false;       ///< compiler-generated temporary
  bool eliminated = false;    ///< storage removed by offset arrays
  std::array<int, kMaxRank> halo_lo{0, 0, 0};
  std::array<int, kMaxRank> halo_hi{0, 0, 0};

  /// "(BLOCK,BLOCK)" etc., for declarations and diagnostics.
  [[nodiscard]] std::string dist_str() const;
};

/// Ids are indices into the symbol table's vectors; they remain stable
/// for the lifetime of a Program.
using ScalarId = int;
using ArrayId = int;

class SymbolTable {
 public:
  ScalarId add_scalar(ScalarSymbol sym);
  ArrayId add_array(ArraySymbol sym);

  /// Creates a compiler temporary shaped and distributed like `model`.
  ArrayId make_temp(ArrayId model, const std::string& base = "TMP");

  [[nodiscard]] const ScalarSymbol& scalar(ScalarId id) const {
    return scalars_.at(static_cast<std::size_t>(id));
  }
  [[nodiscard]] ScalarSymbol& scalar(ScalarId id) {
    return scalars_.at(static_cast<std::size_t>(id));
  }
  [[nodiscard]] const ArraySymbol& array(ArrayId id) const {
    return arrays_.at(static_cast<std::size_t>(id));
  }
  [[nodiscard]] ArraySymbol& array(ArrayId id) {
    return arrays_.at(static_cast<std::size_t>(id));
  }

  [[nodiscard]] std::optional<ScalarId> find_scalar(
      const std::string& name) const;
  [[nodiscard]] std::optional<ArrayId> find_array(
      const std::string& name) const;

  [[nodiscard]] int num_scalars() const {
    return static_cast<int>(scalars_.size());
  }
  [[nodiscard]] int num_arrays() const {
    return static_cast<int>(arrays_.size());
  }

  /// True when the two arrays have identical extents and distributions
  /// (the paper's alignment precondition for offset arrays and statement
  /// congruence).
  [[nodiscard]] bool conformable(ArrayId a, ArrayId b) const;

 private:
  std::vector<ScalarSymbol> scalars_;
  std::vector<ArraySymbol> arrays_;
  std::unordered_map<std::string, ScalarId> scalar_names_;
  std::unordered_map<std::string, ArrayId> array_names_;
  int temp_counter_ = 0;
};

}  // namespace hpfsc::ir

// Statements of the normalized intermediate form (paper Section 2.1)
// and of the later pipeline stages (OVERLAP_SHIFT calls after the
// offset-array pass, subgrid loop nests after scalarization).
#pragma once

#include <memory>
#include <vector>

#include "ir/expr.hpp"
#include "ir/symbols.hpp"
#include "simpi/shift_ops.hpp"

namespace hpfsc::ir {

/// RSD extension carried by an OVERLAP_SHIFT (paper "[0:N+1,*]"): how far
/// the transferred cross-section reaches into the overlap areas of the
/// non-shift dimensions.  Shares the runtime representation.
using Rsd = simpi::RsdExtension;
using simpi::ShiftKind;

enum class StmtKind {
  ArrayAssign,   ///< whole-array or section assignment (compute)
  ShiftAssign,   ///< normal form: DST = CSHIFT(SRC, s, d)
  OverlapShift,  ///< CALL OVERLAP_CSHIFT(SRC, s, d [, rsd])
  Copy,          ///< DST = SRC (compensation copy)
  Alloc,         ///< ALLOCATE t1, t2, ...
  Free,          ///< DEALLOCATE t1, t2, ...
  ScalarAssign,  ///< scalar = expr
  If,            ///< IF (cond) THEN ... ELSE ... ENDIF
  Do,            ///< DO var = lo, hi ... ENDDO
  LoopNest,      ///< scalarized subgrid loop nest
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
using Block = std::vector<StmtPtr>;

struct Stmt {
  explicit Stmt(StmtKind k) : kind(k) {}
  virtual ~Stmt() = default;
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;

  [[nodiscard]] virtual StmtPtr clone() const = 0;

  StmtKind kind;
  SourceLoc loc;
};

/// Array assignment in array syntax: lhs (whole array or section) = rhs.
/// In the normal form the RHS contains no Shift nodes; they have been
/// hoisted into ShiftAssignStmt singletons.
struct ArrayAssignStmt final : Stmt {
  ArrayAssignStmt() : Stmt(StmtKind::ArrayAssign) {}
  [[nodiscard]] StmtPtr clone() const override;

  ArrayRef lhs;
  ExprPtr rhs;
};

/// Normal-form singleton shift: dst = CSHIFT(src, shift, dim).  `src`
/// may carry an offset annotation after the offset-array pass rewrites
/// chained shifts (multi-offset arrays).
struct ShiftAssignStmt final : Stmt {
  ShiftAssignStmt() : Stmt(StmtKind::ShiftAssign) {}
  [[nodiscard]] StmtPtr clone() const override;

  ArrayId dst = -1;
  ArrayRef src;
  int shift = 0;
  int dim = 0;  ///< 0-based
  ShiftIntrinsic intrinsic = ShiftIntrinsic::CShift;
  ExprPtr boundary;  ///< EOSHIFT boundary (scalar expr; may be null)
};

/// CALL OVERLAP_CSHIFT(src, SHIFT=s, DIM=d [, rsd]): move off-processor
/// data of `src` into its overlap area.  `src.offset` non-zero marks a
/// multi-offset array (a shift of an already-offset reference).
struct OverlapShiftStmt final : Stmt {
  OverlapShiftStmt() : Stmt(StmtKind::OverlapShift) {}
  [[nodiscard]] StmtPtr clone() const override;

  ArrayRef src;
  int shift = 0;
  int dim = 0;  ///< 0-based
  Rsd rsd;
  ShiftKind shift_kind = ShiftKind::Circular;
  ExprPtr boundary;  ///< EOSHIFT boundary (may be null)
};

/// Whole-array compensation copy: dst = src (intraprocessor).
struct CopyStmt final : Stmt {
  CopyStmt() : Stmt(StmtKind::Copy) {}
  [[nodiscard]] StmtPtr clone() const override;

  ArrayId dst = -1;
  ArrayRef src;
};

struct AllocStmt final : Stmt {
  AllocStmt() : Stmt(StmtKind::Alloc) {}
  [[nodiscard]] StmtPtr clone() const override;

  std::vector<ArrayId> arrays;
};

struct FreeStmt final : Stmt {
  FreeStmt() : Stmt(StmtKind::Free) {}
  [[nodiscard]] StmtPtr clone() const override;

  std::vector<ArrayId> arrays;
};

struct ScalarAssignStmt final : Stmt {
  ScalarAssignStmt() : Stmt(StmtKind::ScalarAssign) {}
  [[nodiscard]] StmtPtr clone() const override;

  ScalarId scalar = -1;
  ExprPtr rhs;
};

/// Structured conditional.  The condition is a scalar expression
/// compared against zero (non-zero = true), matching the lowering of
/// Fortran logical expressions in this subset.
struct IfStmt final : Stmt {
  IfStmt() : Stmt(StmtKind::If) {}
  [[nodiscard]] StmtPtr clone() const override;

  ExprPtr cond;
  Block then_block;
  Block else_block;
};

/// Counted DO loop over an integer scalar.
struct DoStmt final : Stmt {
  DoStmt() : Stmt(StmtKind::Do) {}
  [[nodiscard]] StmtPtr clone() const override;

  ScalarId var = -1;
  AffineBound lo;
  AffineBound hi;
  Block body;
};

/// A scalarized subgrid loop nest (paper Figure 16).  Iteration space is
/// in global indices; SPMD lowering intersects it with each PE's owned
/// box.  Body statements are element-wise: every ArrayRef's `offset` is
/// relative to the iteration point, sections are unused.
struct LoopNestStmt final : Stmt {
  LoopNestStmt() : Stmt(StmtKind::LoopNest) {}
  [[nodiscard]] StmtPtr clone() const override;

  struct BodyAssign {
    ArrayRef lhs;
    ExprPtr rhs;

    [[nodiscard]] BodyAssign clone() const {
      return BodyAssign{lhs, rhs->clone()};
    }
  };

  int rank = 2;
  std::array<SectionRange, kMaxRank> bounds;  ///< per dim, global indices
  std::vector<BodyAssign> body;

  // -- Memory-optimization annotations (paper Section 3.4) -------------
  /// Loop order, outermost first.  Scalarization produces {0,1,2} (the
  /// paper's Figure 16 order); loop permutation moves the contiguous
  /// dimension innermost for cache locality.
  std::array<int, kMaxRank> loop_order{0, 1, 2};
  int unroll_jam = 1;          ///< unroll factor applied to the outer loop
  bool scalar_replaced = false;  ///< redundant loads shared across body
};

/// Deep copy of a block.
[[nodiscard]] Block clone_block(const Block& b);

}  // namespace hpfsc::ir

#include "ir/expr.hpp"

#include <functional>

namespace hpfsc::ir {

ExprPtr Expr::clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->loc = loc;
  out->value = value;
  out->scalar = scalar;
  out->ref = ref;
  out->op = op;
  out->intrinsic = intrinsic;
  out->shift = shift;
  out->dim = dim;
  if (lhs) out->lhs = lhs->clone();
  if (rhs) out->rhs = rhs->clone();
  if (boundary) out->boundary = boundary->clone();
  return out;
}

bool Expr::equals(const Expr& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case ExprKind::Constant:
      return value == other.value;
    case ExprKind::ScalarRef:
      return scalar == other.scalar;
    case ExprKind::ArrayRefK:
      return ref == other.ref;
    case ExprKind::Binary:
      return op == other.op && lhs->equals(*other.lhs) &&
             rhs->equals(*other.rhs);
    case ExprKind::Unary:
      return lhs->equals(*other.lhs);
    case ExprKind::Shift:
      if (intrinsic != other.intrinsic || shift != other.shift ||
          dim != other.dim || !lhs->equals(*other.lhs)) {
        return false;
      }
      if ((boundary == nullptr) != (other.boundary == nullptr)) return false;
      return boundary == nullptr || boundary->equals(*other.boundary);
  }
  return false;
}

ExprPtr make_const(double v, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Constant;
  e->value = v;
  e->loc = loc;
  return e;
}

ExprPtr make_scalar_ref(ScalarId s, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::ScalarRef;
  e->scalar = s;
  e->loc = loc;
  return e;
}

ExprPtr make_array_ref(ArrayRef ref, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::ArrayRefK;
  e->ref = std::move(ref);
  e->loc = loc;
  return e;
}

ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Binary;
  e->op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  e->loc = loc;
  return e;
}

ExprPtr make_unary_neg(ExprPtr operand, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Unary;
  e->lhs = std::move(operand);
  e->loc = loc;
  return e;
}

ExprPtr make_shift(ShiftIntrinsic intrinsic, ExprPtr arg, int shift, int dim,
                   ExprPtr boundary, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Shift;
  e->intrinsic = intrinsic;
  e->lhs = std::move(arg);
  e->shift = shift;
  e->dim = dim;
  e->boundary = std::move(boundary);
  e->loc = loc;
  return e;
}

namespace {
template <typename E, typename F>
void visit_impl(E& e, const F& fn) {
  fn(e);
  if (e.lhs) visit_impl(*e.lhs, fn);
  if (e.rhs) visit_impl(*e.rhs, fn);
  if (e.boundary) visit_impl(*e.boundary, fn);
}
}  // namespace

void visit_exprs(Expr& e, const std::function<void(Expr&)>& fn) {
  visit_impl(e, fn);
}

void visit_exprs(const Expr& e, const std::function<void(const Expr&)>& fn) {
  visit_impl(e, fn);
}

std::vector<ArrayId> referenced_arrays(const Expr& e) {
  std::vector<ArrayId> out;
  visit_exprs(e, [&](const Expr& node) {
    if (node.kind == ExprKind::ArrayRefK) out.push_back(node.ref.array);
  });
  return out;
}

bool contains_shift(const Expr& e) {
  bool found = false;
  visit_exprs(e, [&](const Expr& node) {
    if (node.kind == ExprKind::Shift) found = true;
  });
  return found;
}

}  // namespace hpfsc::ir

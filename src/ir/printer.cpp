#include "ir/printer.hpp"

#include <array>

#include "support/text.hpp"

namespace hpfsc::ir {

namespace {

constexpr std::array<const char*, 3> kIndexVars{"i", "j", "k"};

std::string indent_str(int indent) {
  return std::string(static_cast<std::size_t>(indent) * 2, ' ');
}

int precedence(BinaryOp op) {
  switch (op) {
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
    case BinaryOp::Eq:
    case BinaryOp::Ne:
      return 1;
    case BinaryOp::Add:
    case BinaryOp::Sub:
      return 2;
    case BinaryOp::Mul:
    case BinaryOp::Div:
      return 3;
  }
  return 0;
}

const char* op_str(BinaryOp op) {
  switch (op) {
    case BinaryOp::Add:
      return " + ";
    case BinaryOp::Sub:
      return " - ";
    case BinaryOp::Mul:
      return "*";
    case BinaryOp::Div:
      return "/";
    case BinaryOp::Lt:
      return " < ";
    case BinaryOp::Le:
      return " <= ";
    case BinaryOp::Gt:
      return " > ";
    case BinaryOp::Ge:
      return " >= ";
    case BinaryOp::Eq:
      return " == ";
    case BinaryOp::Ne:
      return " /= ";
  }
  return "?";
}

std::string format_number(double v) {
  // Integral constants print without a trailing ".0" clutter.
  if (v == static_cast<long long>(v) && v > -1e15 && v < 1e15) {
    return std::to_string(static_cast<long long>(v)) + ".0";
  }
  std::string s = std::to_string(v);
  while (s.size() > 1 && s.back() == '0' && s[s.size() - 2] != '.') {
    s.pop_back();
  }
  return s;
}

std::string offset_annotation(const ArrayRef& ref, int rank) {
  // Paper notation: U<+1,0> — explicit sign on non-zero components only.
  std::string out = "<";
  for (int d = 0; d < rank; ++d) {
    if (d != 0) out += ",";
    out += ref.offset[d] == 0 ? "0" : hpfsc::signed_str(ref.offset[d]);
  }
  out += ">";
  return out;
}

}  // namespace

std::string Printer::print_program() const {
  std::string out;
  const SymbolTable& syms = program_.symbols;
  for (int id = 0; id < syms.num_arrays(); ++id) {
    const ArraySymbol& a = syms.array(id);
    if (a.eliminated) continue;
    out += "REAL " + a.name + "(";
    for (int d = 0; d < a.rank; ++d) {
      if (d != 0) out += ",";
      out += a.extent[d].str();
    }
    out += ")\n";
    out += "!HPF$ DISTRIBUTE " + a.name + a.dist_str() + "\n";
  }
  out += "\n";
  out += print_body();
  return out;
}

std::string Printer::print_body() const {
  std::string out;
  print_block(program_.body, 0, out);
  return out;
}

std::string Printer::print_stmt(const Stmt& s, int indent) const {
  std::string out;
  append_stmt(s, indent, out);
  // Drop the trailing newline for single-statement queries.
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

std::string Printer::print_expr(const Expr& e) const { return expr_str(e, 0); }

std::string Printer::print_ref(const ArrayRef& ref) const {
  const ArraySymbol& sym = program_.symbols.array(ref.array);
  std::string out = sym.name;
  if (ref.has_offset()) out += offset_annotation(ref, sym.rank);
  if (!ref.whole_array()) {
    out += "(";
    for (int d = 0; d < sym.rank; ++d) {
      if (d != 0) out += ",";
      const SectionRange& r = ref.section[static_cast<std::size_t>(d)];
      if (r.lo == r.hi) {
        out += r.lo.str();
      } else {
        out += r.lo.str() + ":" + r.hi.str();
      }
    }
    out += ")";
  }
  return out;
}

void Printer::print_block(const Block& b, int indent, std::string& out) const {
  for (const StmtPtr& s : b) append_stmt(*s, indent, out);
}

void Printer::append_stmt(const Stmt& s, int indent, std::string& out) const {
  const SymbolTable& syms = program_.symbols;
  const std::string pad = indent_str(indent);
  switch (s.kind) {
    case StmtKind::ArrayAssign: {
      const auto& stmt = static_cast<const ArrayAssignStmt&>(s);
      out += pad + print_ref(stmt.lhs) + " = " + expr_str(*stmt.rhs, 0) + "\n";
      return;
    }
    case StmtKind::ShiftAssign: {
      const auto& stmt = static_cast<const ShiftAssignStmt&>(s);
      const char* name =
          stmt.intrinsic == ShiftIntrinsic::CShift ? "CSHIFT" : "EOSHIFT";
      out += pad + syms.array(stmt.dst).name + " = " + name + "(" +
             print_ref(stmt.src) + ", SHIFT=" + hpfsc::signed_str(stmt.shift) +
             ", DIM=" + std::to_string(stmt.dim + 1);
      if (stmt.boundary) out += ", BOUNDARY=" + expr_str(*stmt.boundary, 0);
      out += ")\n";
      return;
    }
    case StmtKind::OverlapShift: {
      const auto& stmt = static_cast<const OverlapShiftStmt&>(s);
      const char* name = stmt.shift_kind == ShiftKind::Circular
                             ? "OVERLAP_CSHIFT"
                             : "OVERLAP_EOSHIFT";
      out += pad + "CALL " + name + "(" + print_ref(stmt.src) +
             ", SHIFT=" + hpfsc::signed_str(stmt.shift) +
             ", DIM=" + std::to_string(stmt.dim + 1);
      if (stmt.rsd.any()) {
        out += ", " + rsd_str(stmt.rsd, syms.array(stmt.src.array), stmt.dim);
      }
      if (stmt.boundary) out += ", BOUNDARY=" + expr_str(*stmt.boundary, 0);
      out += ")\n";
      return;
    }
    case StmtKind::Copy: {
      const auto& stmt = static_cast<const CopyStmt&>(s);
      out += pad + syms.array(stmt.dst).name + " = " + print_ref(stmt.src) +
             "\n";
      return;
    }
    case StmtKind::Alloc: {
      const auto& stmt = static_cast<const AllocStmt&>(s);
      std::vector<std::string> names;
      names.reserve(stmt.arrays.size());
      for (ArrayId a : stmt.arrays) names.push_back(syms.array(a).name);
      out += pad + "ALLOCATE " + hpfsc::join(names, ", ") + "\n";
      return;
    }
    case StmtKind::Free: {
      const auto& stmt = static_cast<const FreeStmt&>(s);
      std::vector<std::string> names;
      names.reserve(stmt.arrays.size());
      for (ArrayId a : stmt.arrays) names.push_back(syms.array(a).name);
      out += pad + "DEALLOCATE " + hpfsc::join(names, ", ") + "\n";
      return;
    }
    case StmtKind::ScalarAssign: {
      const auto& stmt = static_cast<const ScalarAssignStmt&>(s);
      out += pad + syms.scalar(stmt.scalar).name + " = " +
             expr_str(*stmt.rhs, 0) + "\n";
      return;
    }
    case StmtKind::If: {
      const auto& stmt = static_cast<const IfStmt&>(s);
      out += pad + "IF (" + expr_str(*stmt.cond, 0) + ") THEN\n";
      print_block(stmt.then_block, indent + 1, out);
      if (!stmt.else_block.empty()) {
        out += pad + "ELSE\n";
        print_block(stmt.else_block, indent + 1, out);
      }
      out += pad + "ENDIF\n";
      return;
    }
    case StmtKind::Do: {
      const auto& stmt = static_cast<const DoStmt&>(s);
      out += pad + "DO " + syms.scalar(stmt.var).name + " = " +
             stmt.lo.str() + ", " + stmt.hi.str() + "\n";
      print_block(stmt.body, indent + 1, out);
      out += pad + "ENDDO\n";
      return;
    }
    case StmtKind::LoopNest: {
      const auto& nest = static_cast<const LoopNestStmt&>(s);
      int level = indent;
      for (int n = 0; n < nest.rank; ++n) {
        int d = nest.loop_order[static_cast<std::size_t>(n)];
        const SectionRange& b = nest.bounds[static_cast<std::size_t>(d)];
        out += indent_str(level) + "DO " + kIndexVars[static_cast<std::size_t>(d)];
        out += " = " + b.lo.str() + ", " + b.hi.str();
        if (n == 0 && nest.unroll_jam > 1) {
          out += ", " + std::to_string(nest.unroll_jam) +
                 "   ! unroll-and-jam";
        }
        out += "\n";
        ++level;
      }
      for (const LoopNestStmt::BodyAssign& b : nest.body) {
        const ArraySymbol& lhs_sym = syms.array(b.lhs.array);
        out += indent_str(level) + element_ref_str(b.lhs, lhs_sym.rank) +
               " = " + expr_str(*b.rhs, 0, /*element_mode=*/true) + "\n";
      }
      for (int n = nest.rank - 1; n >= 0; --n) {
        --level;
        out += indent_str(level) + "ENDDO\n";
      }
      return;
    }
  }
}

std::string Printer::expr_str(const Expr& e, int parent_prec,
                              bool element_mode) const {
  switch (e.kind) {
    case ExprKind::Constant:
      return format_number(e.value);
    case ExprKind::ScalarRef:
      return program_.symbols.scalar(e.scalar).name;
    case ExprKind::ArrayRefK: {
      // Inside loop nests array refs are element-wise (U(i+1,j));
      // elsewhere they are section/offset refs (U<+1,0>).
      if (element_mode) {
        return element_ref_str(e.ref,
                               program_.symbols.array(e.ref.array).rank);
      }
      return print_ref(e.ref);
    }
    case ExprKind::Binary: {
      int prec = precedence(e.op);
      std::string l = expr_str(*e.lhs, prec, element_mode);
      // Right operand of - and / needs parens at equal precedence.
      int rprec = (e.op == BinaryOp::Sub || e.op == BinaryOp::Div)
                      ? prec + 1
                      : prec;
      std::string r = expr_str(*e.rhs, rprec, element_mode);
      std::string body = l + op_str(e.op) + r;
      if (prec < parent_prec) return "(" + body + ")";
      return body;
    }
    case ExprKind::Unary: {
      std::string body = "-" + expr_str(*e.lhs, 3, element_mode);
      if (parent_prec > 0) return "(" + body + ")";
      return body;
    }
    case ExprKind::Shift: {
      const char* name =
          e.intrinsic == ShiftIntrinsic::CShift ? "CSHIFT" : "EOSHIFT";
      std::string out = std::string(name) + "(" + expr_str(*e.lhs, 0) +
                        ", SHIFT=" + hpfsc::signed_str(e.shift) +
                        ", DIM=" + std::to_string(e.dim + 1);
      if (e.boundary) out += ", BOUNDARY=" + expr_str(*e.boundary, 0);
      out += ")";
      return out;
    }
  }
  return "?";
}

std::string Printer::rsd_str(const Rsd& rsd, const ArraySymbol& sym,
                             int shift_dim) const {
  std::string out = "[";
  for (int d = 0; d < sym.rank; ++d) {
    if (d != 0) out += ",";
    if (d == shift_dim) {
      out += "*";
      continue;
    }
    AffineBound lo(1 - rsd.lo[d]);
    AffineBound hi = sym.extent[d].plus(rsd.hi[d]);
    out += lo.str() + ":" + hi.str();
  }
  out += "]";
  return out;
}

std::string Printer::element_ref_str(const ArrayRef& ref, int rank) const {
  const ArraySymbol& sym = program_.symbols.array(ref.array);
  std::string out = sym.name + "(";
  for (int d = 0; d < rank; ++d) {
    if (d != 0) out += ",";
    out += kIndexVars[static_cast<std::size_t>(d)];
    int off = ref.offset[d];
    if (off > 0) out += "+" + std::to_string(off);
    if (off < 0) out += std::to_string(off);
  }
  out += ")";
  return out;
}

}  // namespace hpfsc::ir

#include "ir/symbols.hpp"

namespace hpfsc::ir {

std::string AffineBound::str() const {
  if (param.empty()) return std::to_string(constant);
  if (constant == 0) return param;
  if (constant > 0) return param + "+" + std::to_string(constant);
  return param + std::to_string(constant);
}

std::string ArraySymbol::dist_str() const {
  std::string out = "(";
  for (int d = 0; d < rank; ++d) {
    if (d != 0) out += ",";
    out += simpi::to_string(dist[d]);
  }
  out += ")";
  return out;
}

ScalarId SymbolTable::add_scalar(ScalarSymbol sym) {
  if (scalar_names_.contains(sym.name)) {
    throw std::invalid_argument("duplicate scalar symbol '" + sym.name + "'");
  }
  auto id = static_cast<ScalarId>(scalars_.size());
  scalar_names_.emplace(sym.name, id);
  scalars_.push_back(std::move(sym));
  return id;
}

ArrayId SymbolTable::add_array(ArraySymbol sym) {
  if (array_names_.contains(sym.name)) {
    throw std::invalid_argument("duplicate array symbol '" + sym.name + "'");
  }
  auto id = static_cast<ArrayId>(arrays_.size());
  array_names_.emplace(sym.name, id);
  arrays_.push_back(std::move(sym));
  return id;
}

ArrayId SymbolTable::make_temp(ArrayId model, const std::string& base) {
  ArraySymbol t = array(model);
  t.is_temp = true;
  t.eliminated = false;
  t.halo_lo = {0, 0, 0};
  t.halo_hi = {0, 0, 0};
  do {
    t.name = base + std::to_string(++temp_counter_);
  } while (array_names_.contains(t.name));
  return add_array(std::move(t));
}

std::optional<ScalarId> SymbolTable::find_scalar(
    const std::string& name) const {
  auto it = scalar_names_.find(name);
  if (it == scalar_names_.end()) return std::nullopt;
  return it->second;
}

std::optional<ArrayId> SymbolTable::find_array(const std::string& name) const {
  auto it = array_names_.find(name);
  if (it == array_names_.end()) return std::nullopt;
  return it->second;
}

bool SymbolTable::conformable(ArrayId a, ArrayId b) const {
  const ArraySymbol& x = array(a);
  const ArraySymbol& y = array(b);
  if (x.rank != y.rank) return false;
  for (int d = 0; d < x.rank; ++d) {
    if (x.extent[d] != y.extent[d] || x.dist[d] != y.dist[d]) return false;
  }
  return true;
}

}  // namespace hpfsc::ir

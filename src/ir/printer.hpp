// Pretty printer producing the paper's listing style (Figures 4, 12-16):
// used for golden tests, the examples' per-phase dumps, and diagnostics.
#pragma once

#include <string>

#include "ir/program.hpp"

namespace hpfsc::ir {

class Printer {
 public:
  explicit Printer(const Program& program) : program_(program) {}

  /// Declarations (with HPF directives) followed by the body.
  [[nodiscard]] std::string print_program() const;

  /// Statements only, one per line, two-space indentation per level.
  [[nodiscard]] std::string print_body() const;

  [[nodiscard]] std::string print_stmt(const Stmt& s, int indent = 0) const;
  [[nodiscard]] std::string print_expr(const Expr& e) const;
  [[nodiscard]] std::string print_ref(const ArrayRef& ref) const;

 private:
  void print_block(const Block& b, int indent, std::string& out) const;
  void append_stmt(const Stmt& s, int indent, std::string& out) const;
  [[nodiscard]] std::string expr_str(const Expr& e, int parent_prec,
                                     bool element_mode = false) const;
  [[nodiscard]] std::string rsd_str(const Rsd& rsd, const ArraySymbol& sym,
                                    int shift_dim) const;
  [[nodiscard]] std::string element_ref_str(const ArrayRef& ref,
                                            int rank) const;

  const Program& program_;
};

}  // namespace hpfsc::ir

// Expression trees for the right-hand sides of array assignments.
// After normalization, CSHIFT nodes appear only as the sole RHS of a
// singleton shift assignment; compute statements contain only scalar
// operands and (offset-annotated) array references.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/symbols.hpp"
#include "support/source_location.hpp"

namespace hpfsc::ir {

/// A reference to an array with an optional explicit section and the
/// offset annotation introduced by the offset-array optimization
/// (paper notation U<+1,0>: read element (i+1, j) of U).
struct ArrayRef {
  ArrayId array = -1;
  /// Per-dimension section; empty means a whole-array reference.
  std::vector<SectionRange> section;
  /// Offset annotation; all zero when not an offset reference.
  std::array<int, kMaxRank> offset{0, 0, 0};

  [[nodiscard]] bool has_offset() const {
    return offset != std::array<int, kMaxRank>{0, 0, 0};
  }
  [[nodiscard]] bool whole_array() const { return section.empty(); }

  bool operator==(const ArrayRef&) const = default;
};

enum class ExprKind {
  Constant,    ///< floating literal
  ScalarRef,   ///< coefficient or integer parameter
  ArrayRefK,   ///< array (section) reference
  Binary,      ///< + - * /
  Unary,       ///< negation
  Shift,       ///< CSHIFT/EOSHIFT intrinsic call
};

/// Arithmetic and relational operators.  Relational operators evaluate
/// to 1.0 / 0.0 and appear only in IF conditions.
enum class BinaryOp { Add, Sub, Mul, Div, Lt, Le, Gt, Ge, Eq, Ne };
enum class ShiftIntrinsic { CShift, EoShift };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// A single expression node.  One struct with a kind tag (rather than a
/// class hierarchy) keeps cloning/equality/printing in one place.
struct Expr {
  ExprKind kind;
  SourceLoc loc;

  // Constant
  double value = 0.0;
  // ScalarRef
  ScalarId scalar = -1;
  // ArrayRefK
  ArrayRef ref;
  // Binary / Unary
  BinaryOp op = BinaryOp::Add;
  ExprPtr lhs;  ///< also the operand of Unary and the argument of Shift
  ExprPtr rhs;
  // Shift
  ShiftIntrinsic intrinsic = ShiftIntrinsic::CShift;
  int shift = 0;
  int dim = 0;          ///< 0-based dimension
  ExprPtr boundary;     ///< EOSHIFT boundary operand (may be null)

  [[nodiscard]] ExprPtr clone() const;
  [[nodiscard]] bool equals(const Expr& other) const;
};

// -- Constructors ------------------------------------------------------
ExprPtr make_const(double v, SourceLoc loc = {});
ExprPtr make_scalar_ref(ScalarId s, SourceLoc loc = {});
ExprPtr make_array_ref(ArrayRef ref, SourceLoc loc = {});
ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs,
                    SourceLoc loc = {});
ExprPtr make_unary_neg(ExprPtr operand, SourceLoc loc = {});
ExprPtr make_shift(ShiftIntrinsic intrinsic, ExprPtr arg, int shift, int dim,
                   ExprPtr boundary = nullptr, SourceLoc loc = {});

/// Walks the tree and applies `fn` to every node (pre-order).
void visit_exprs(Expr& e, const std::function<void(Expr&)>& fn);
void visit_exprs(const Expr& e, const std::function<void(const Expr&)>& fn);

/// Collects the array ids referenced anywhere in the tree.
[[nodiscard]] std::vector<ArrayId> referenced_arrays(const Expr& e);

/// True if the tree contains a Shift node.
[[nodiscard]] bool contains_shift(const Expr& e);

}  // namespace hpfsc::ir

// The compilation unit: a symbol table plus a structured statement list.
#pragma once

#include <string>

#include "ir/stmt.hpp"
#include "ir/symbols.hpp"

namespace hpfsc::ir {

struct Program {
  std::string name = "MAIN";
  SymbolTable symbols;
  Block body;

  Program() = default;
  Program(Program&&) = default;
  Program& operator=(Program&&) = default;
  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;

  /// Deep copy (symbol table is value-copied, statements cloned).
  [[nodiscard]] Program clone() const;
};

/// Applies `fn` to every statement in the block tree, recursing into
/// If/Do bodies (pre-order).
void visit_stmts(Block& b, const std::function<void(Stmt&)>& fn);
void visit_stmts(const Block& b, const std::function<void(const Stmt&)>& fn);

}  // namespace hpfsc::ir

#include "frontend/parser.hpp"

#include "frontend/lexer.hpp"

namespace hpfsc::frontend {

namespace {

/// Normalizes the two-token "END IF" / "END DO" terminators.
std::string normalized_terminator(const Token& t0, const Token& t1) {
  if (t0.kind != TokenKind::Ident) return "";
  if (t0.text == "ELSE" || t0.text == "ENDIF" || t0.text == "ENDDO") {
    return t0.text;
  }
  if (t0.text == "END") {
    if (t1.kind == TokenKind::Ident) {
      if (t1.text == "IF") return "ENDIF";
      if (t1.text == "DO") return "ENDDO";
    }
    return "END";
  }
  return "";
}

}  // namespace

ast::Program Parser::parse_source(std::string_view source,
                                  DiagnosticEngine& diags) {
  Lexer lexer(source, diags);
  Parser parser(lexer.tokenize(), diags);
  return parser.parse_program();
}

const Token& Parser::peek(std::size_t ahead) const {
  std::size_t i = pos_ + ahead;
  if (i >= tokens_.size()) i = tokens_.size() - 1;  // EndOfFile sentinel
  return tokens_[i];
}

const Token& Parser::advance() {
  const Token& t = peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::accept(TokenKind k) {
  if (check(k)) {
    advance();
    return true;
  }
  return false;
}

bool Parser::accept_ident(const std::string& name) {
  if (check_ident(name)) {
    advance();
    return true;
  }
  return false;
}

const Token& Parser::expect(TokenKind k, const std::string& context) {
  if (check(k)) return advance();
  diags_.error(peek().loc, "expected " + to_string(k) + " " + context +
                               ", found " + to_string(peek().kind) +
                               (peek().text.empty() ? "" : " '" + peek().text +
                                                              "'"));
  return peek();
}

void Parser::expect_end_of_stmt() {
  if (check(TokenKind::Newline)) {
    advance();
    return;
  }
  if (check(TokenKind::EndOfFile)) return;
  diags_.error(peek().loc, "unexpected tokens at end of statement");
  sync_to_stmt_end();
}

void Parser::skip_newlines() {
  while (check(TokenKind::Newline)) advance();
}

void Parser::sync_to_stmt_end() {
  while (!check(TokenKind::Newline) && !check(TokenKind::EndOfFile)) {
    advance();
  }
  accept(TokenKind::Newline);
}

ast::Program Parser::parse_program() {
  ast::Program out;
  skip_newlines();
  while (!check(TokenKind::EndOfFile)) {
    if (check(TokenKind::Directive)) {
      Token t = advance();
      parse_directive(t, out);
      skip_newlines();
      continue;
    }
    if (check_ident("PROGRAM")) {
      advance();
      if (check(TokenKind::Ident)) out.name = advance().text;
      expect_end_of_stmt();
      skip_newlines();
      continue;
    }
    if (check_ident("REAL") || check_ident("INTEGER")) {
      parse_decl(out);
      skip_newlines();
      continue;
    }
    if (normalized_terminator(peek(), peek(1)) == "END") {
      // END [PROGRAM [name]] closes the unit; ignore the remainder.
      sync_to_stmt_end();
      skip_newlines();
      continue;
    }
    ast::StmtPtr stmt = parse_statement();
    if (stmt) out.stmts.push_back(std::move(stmt));
    skip_newlines();
  }
  return out;
}

void Parser::parse_directive(const Token& tok, ast::Program& out) {
  // Re-lex the directive payload; positions inside it are approximate
  // (the directive's own location is used for all reports).
  DiagnosticEngine local;
  Lexer sub(tok.text, local);
  std::vector<Token> toks = sub.tokenize();
  std::size_t i = 0;
  auto at = [&](std::size_t k) -> const Token& {
    return toks[std::min(k, toks.size() - 1)];
  };
  if (at(i).kind != TokenKind::Ident) {
    diags_.warning(tok.loc, "empty HPF directive ignored");
    return;
  }
  const std::string kind = at(i++).text;
  if (kind == "DISTRIBUTE") {
    ast::DistributeDirective d;
    d.loc = tok.loc;
    if (at(i).kind != TokenKind::Ident) {
      diags_.error(tok.loc, "DISTRIBUTE: expected array name");
      return;
    }
    d.array = at(i++).text;
    if (at(i).kind != TokenKind::LParen) {
      diags_.error(tok.loc, "DISTRIBUTE: expected '(' after array name");
      return;
    }
    ++i;
    while (true) {
      if (at(i).kind == TokenKind::Star) {
        d.dist.push_back("*");
        ++i;
      } else if (at(i).kind == TokenKind::Ident) {
        d.dist.push_back(at(i).text);
        ++i;
        if (at(i).kind == TokenKind::LParen) {
          diags_.error(tok.loc,
                       "DISTRIBUTE: parameterized distributions (CYCLIC(k), "
                       "BLOCK(k)) are not supported");
          return;
        }
      } else {
        diags_.error(tok.loc, "DISTRIBUTE: malformed distribution list");
        return;
      }
      if (at(i).kind == TokenKind::Comma) {
        ++i;
        continue;
      }
      break;
    }
    if (at(i).kind != TokenKind::RParen) {
      diags_.error(tok.loc, "DISTRIBUTE: expected ')'");
      return;
    }
    ++i;
    if (at(i).kind == TokenKind::Ident && at(i).text == "ONTO") {
      ++i;
      if (at(i).kind == TokenKind::Ident) d.onto = at(i++).text;
    }
    out.distributes.push_back(std::move(d));
    return;
  }
  if (kind == "PROCESSORS") {
    ast::ProcessorsDirective p;
    p.loc = tok.loc;
    if (at(i).kind != TokenKind::Ident) {
      diags_.error(tok.loc, "PROCESSORS: expected arrangement name");
      return;
    }
    p.name = at(i++).text;
    if (at(i).kind == TokenKind::LParen) {
      ++i;
      while (at(i).kind == TokenKind::IntLit) {
        p.extents.push_back(static_cast<int>(at(i).number));
        ++i;
        if (at(i).kind == TokenKind::Comma) {
          ++i;
          continue;
        }
        break;
      }
      if (at(i).kind != TokenKind::RParen) {
        diags_.error(tok.loc, "PROCESSORS: expected ')'");
        return;
      }
    }
    out.processors.push_back(std::move(p));
    return;
  }
  if (kind == "ALIGN") {
    ast::AlignDirective a;
    a.loc = tok.loc;
    if (at(i).kind == TokenKind::Ident) a.array = at(i++).text;
    // Skip an optional dummy-argument list: ALIGN B(I,J) WITH A(I,J).
    if (at(i).kind == TokenKind::LParen) {
      while (i < toks.size() && at(i).kind != TokenKind::RParen) ++i;
      if (at(i).kind == TokenKind::RParen) ++i;
    }
    if (!(at(i).kind == TokenKind::Ident && at(i).text == "WITH")) {
      diags_.error(tok.loc, "ALIGN: expected WITH");
      return;
    }
    ++i;
    if (at(i).kind == TokenKind::Ident) a.target = at(i++).text;
    out.aligns.push_back(std::move(a));
    return;
  }
  diags_.warning(tok.loc, "unsupported HPF directive '" + kind + "' ignored");
}

void Parser::parse_decl(ast::Program& out) {
  ast::Decl d;
  d.loc = peek().loc;
  d.base = advance().text == "REAL" ? ir::ScalarType::Real
                                    : ir::ScalarType::Integer;
  while (accept(TokenKind::Comma)) {
    if (accept_ident("PARAMETER")) {
      d.parameter = true;
    } else if (accept_ident("ALLOCATABLE")) {
      d.allocatable = true;
    } else if (accept_ident("DIMENSION")) {
      expect(TokenKind::LParen, "after DIMENSION");
      while (true) {
        if (accept(TokenKind::Colon)) {
          d.dimension_attr.push_back(nullptr);
        } else {
          d.dimension_attr.push_back(parse_expr());
        }
        if (!accept(TokenKind::Comma)) break;
      }
      expect(TokenKind::RParen, "closing DIMENSION");
    } else {
      diags_.error(peek().loc,
                   "unknown declaration attribute '" + peek().text + "'");
      sync_to_stmt_end();
      return;
    }
  }
  accept(TokenKind::DoubleColon);
  while (true) {
    ast::Entity e;
    e.loc = peek().loc;
    if (!check(TokenKind::Ident)) {
      diags_.error(peek().loc, "expected entity name in declaration");
      sync_to_stmt_end();
      return;
    }
    e.name = advance().text;
    if (accept(TokenKind::LParen)) {
      while (true) {
        if (accept(TokenKind::Colon)) {
          e.dims.push_back(nullptr);
        } else {
          ast::ExprPtr lo = parse_expr();
          if (accept(TokenKind::Colon)) {
            // Explicit lower bound: only 1:hi is representable.
            if (lo->kind != ast::ExprKind::Number || lo->number != 1.0) {
              diags_.error(lo->loc,
                           "array lower bounds other than 1 are unsupported");
            }
            e.dims.push_back(parse_expr());
          } else {
            e.dims.push_back(std::move(lo));
          }
        }
        if (!accept(TokenKind::Comma)) break;
      }
      expect(TokenKind::RParen, "closing array declaration");
    }
    if (accept(TokenKind::Assign)) e.init = parse_expr();
    d.entities.push_back(std::move(e));
    if (!accept(TokenKind::Comma)) break;
  }
  expect_end_of_stmt();
  out.decls.push_back(std::move(d));
}

ast::StmtPtr Parser::parse_statement() {
  skip_newlines();
  SourceLoc loc = peek().loc;
  if (check_ident("IF")) return parse_if();
  if (check_ident("DO")) return parse_do();
  if (check_ident("ALLOCATE")) return parse_allocate(true);
  if (check_ident("DEALLOCATE")) return parse_allocate(false);
  if (check_ident("CALL")) return parse_call();
  if (check(TokenKind::Ident)) return parse_assignment();
  diags_.error(loc, "expected a statement, found " + to_string(peek().kind));
  sync_to_stmt_end();
  return nullptr;
}

ast::Block Parser::parse_block(const std::vector<std::string>& terminators,
                               std::string* hit) {
  ast::Block out;
  while (true) {
    skip_newlines();
    if (check(TokenKind::EndOfFile)) {
      diags_.error(peek().loc, "unterminated block (missing " +
                                   (terminators.empty() ? std::string("END")
                                                        : terminators.back()) +
                                   ")");
      if (hit) *hit = "";
      return out;
    }
    std::string term = normalized_terminator(peek(), peek(1));
    if (!term.empty()) {
      for (const std::string& want : terminators) {
        if (term == want) {
          // Consume the terminator tokens ("END IF" is two tokens).
          bool two = peek().text == "END";
          advance();
          if (two) advance();
          accept(TokenKind::Newline);
          if (hit) *hit = term;
          return out;
        }
      }
      diags_.error(peek().loc, "unexpected '" + term + "' in block");
      sync_to_stmt_end();
      continue;
    }
    ast::StmtPtr s = parse_statement();
    if (s) out.push_back(std::move(s));
  }
}

ast::StmtPtr Parser::parse_if() {
  auto stmt = std::make_unique<ast::Stmt>();
  stmt->kind = ast::StmtKind::If;
  stmt->loc = peek().loc;
  advance();  // IF
  expect(TokenKind::LParen, "after IF");
  stmt->cond = parse_expr();
  expect(TokenKind::RParen, "closing IF condition");
  if (accept_ident("THEN")) {
    expect_end_of_stmt();
    std::string hit;
    stmt->then_block = parse_block({"ELSE", "ENDIF"}, &hit);
    if (hit == "ELSE") {
      stmt->else_block = parse_block({"ENDIF"});
    }
  } else {
    // One-line IF: a single statement guard.
    ast::StmtPtr inner = parse_statement();
    if (inner) stmt->then_block.push_back(std::move(inner));
  }
  return stmt;
}

ast::StmtPtr Parser::parse_do() {
  auto stmt = std::make_unique<ast::Stmt>();
  stmt->kind = ast::StmtKind::Do;
  stmt->loc = peek().loc;
  advance();  // DO
  stmt->do_var = expect(TokenKind::Ident, "as DO variable").text;
  expect(TokenKind::Assign, "after DO variable");
  stmt->do_lo = parse_expr();
  expect(TokenKind::Comma, "between DO bounds");
  stmt->do_hi = parse_expr();
  if (accept(TokenKind::Comma)) {
    diags_.error(peek().loc, "DO strides are not supported");
    parse_expr();
  }
  expect_end_of_stmt();
  stmt->body = parse_block({"ENDDO"});
  return stmt;
}

ast::StmtPtr Parser::parse_allocate(bool is_alloc) {
  auto stmt = std::make_unique<ast::Stmt>();
  stmt->kind = is_alloc ? ast::StmtKind::Allocate : ast::StmtKind::Deallocate;
  stmt->loc = peek().loc;
  advance();  // ALLOCATE / DEALLOCATE
  const bool parens = accept(TokenKind::LParen);
  while (true) {
    if (!check(TokenKind::Ident)) {
      diags_.error(peek().loc, "expected array name in ALLOCATE/DEALLOCATE");
      sync_to_stmt_end();
      return stmt;
    }
    stmt->names.push_back(advance().text);
    // Skip an optional shape: ALLOCATE(TMP(N,N)) — the declared or
    // model shape is used; the inline shape is not re-checked.
    if (accept(TokenKind::LParen)) {
      int depth = 1;
      while (depth > 0 && !check(TokenKind::EndOfFile) &&
             !check(TokenKind::Newline)) {
        if (check(TokenKind::LParen)) ++depth;
        if (check(TokenKind::RParen)) --depth;
        if (depth > 0) advance();
      }
      expect(TokenKind::RParen, "closing allocation shape");
    }
    if (!accept(TokenKind::Comma)) break;
  }
  if (parens) expect(TokenKind::RParen, "closing ALLOCATE list");
  expect_end_of_stmt();
  return stmt;
}

ast::StmtPtr Parser::parse_call() {
  auto stmt = std::make_unique<ast::Stmt>();
  stmt->kind = ast::StmtKind::Call;
  stmt->loc = peek().loc;
  advance();  // CALL
  stmt->callee = expect(TokenKind::Ident, "after CALL").text;
  if (accept(TokenKind::LParen)) stmt->call_args = parse_arg_list();
  expect_end_of_stmt();
  return stmt;
}

ast::StmtPtr Parser::parse_assignment() {
  auto stmt = std::make_unique<ast::Stmt>();
  stmt->kind = ast::StmtKind::Assign;
  stmt->loc = peek().loc;
  stmt->target = advance().text;
  if (accept(TokenKind::LParen)) {
    stmt->target_args = parse_arg_list();
    stmt->target_has_parens = true;
  }
  expect(TokenKind::Assign, "in assignment");
  stmt->rhs = parse_expr();
  expect_end_of_stmt();
  return stmt;
}

std::vector<ast::Arg> Parser::parse_arg_list() {
  std::vector<ast::Arg> args;
  if (accept(TokenKind::RParen)) return args;
  while (true) {
    ast::Arg arg;
    if (check(TokenKind::Ident) && peek(1).kind == TokenKind::Assign) {
      arg.keyword = advance().text;
      advance();  // '='
    }
    if (check(TokenKind::Colon)) {
      SourceLoc loc = advance().loc;
      ast::ExprPtr hi = nullptr;
      if (!check(TokenKind::Comma) && !check(TokenKind::RParen)) {
        hi = parse_expr();
      }
      arg.value = ast::make_range(nullptr, std::move(hi), loc);
    } else {
      ast::ExprPtr lo = parse_expr();
      if (accept(TokenKind::Colon)) {
        SourceLoc loc = lo->loc;
        ast::ExprPtr hi = nullptr;
        if (!check(TokenKind::Comma) && !check(TokenKind::RParen)) {
          hi = parse_expr();
        }
        arg.value = ast::make_range(std::move(lo), std::move(hi), loc);
      } else {
        arg.value = std::move(lo);
      }
    }
    args.push_back(std::move(arg));
    if (!accept(TokenKind::Comma)) break;
  }
  expect(TokenKind::RParen, "closing argument list");
  return args;
}

ast::ExprPtr Parser::parse_expr() { return parse_relational(); }

ast::ExprPtr Parser::parse_relational() {
  ast::ExprPtr lhs = parse_additive();
  while (true) {
    ir::BinaryOp op;
    if (check(TokenKind::Lt)) {
      op = ir::BinaryOp::Lt;
    } else if (check(TokenKind::Le)) {
      op = ir::BinaryOp::Le;
    } else if (check(TokenKind::Gt)) {
      op = ir::BinaryOp::Gt;
    } else if (check(TokenKind::Ge)) {
      op = ir::BinaryOp::Ge;
    } else if (check(TokenKind::EqEq)) {
      op = ir::BinaryOp::Eq;
    } else if (check(TokenKind::Ne)) {
      op = ir::BinaryOp::Ne;
    } else {
      return lhs;
    }
    SourceLoc loc = advance().loc;
    ast::ExprPtr rhs = parse_additive();
    lhs = ast::make_binary(op, std::move(lhs), std::move(rhs), loc);
  }
}

ast::ExprPtr Parser::parse_additive() {
  ast::ExprPtr lhs = parse_multiplicative();
  while (check(TokenKind::Plus) || check(TokenKind::Minus)) {
    ir::BinaryOp op = check(TokenKind::Plus) ? ir::BinaryOp::Add
                                             : ir::BinaryOp::Sub;
    SourceLoc loc = advance().loc;
    ast::ExprPtr rhs = parse_multiplicative();
    lhs = ast::make_binary(op, std::move(lhs), std::move(rhs), loc);
  }
  return lhs;
}

ast::ExprPtr Parser::parse_multiplicative() {
  ast::ExprPtr lhs = parse_unary();
  while (check(TokenKind::Star) || check(TokenKind::Slash)) {
    ir::BinaryOp op = check(TokenKind::Star) ? ir::BinaryOp::Mul
                                             : ir::BinaryOp::Div;
    SourceLoc loc = advance().loc;
    ast::ExprPtr rhs = parse_unary();
    lhs = ast::make_binary(op, std::move(lhs), std::move(rhs), loc);
  }
  return lhs;
}

ast::ExprPtr Parser::parse_unary() {
  if (check(TokenKind::Minus)) {
    SourceLoc loc = advance().loc;
    return ast::make_unary(parse_unary(), loc);
  }
  if (check(TokenKind::Plus)) {
    advance();
    return parse_unary();
  }
  return parse_primary();
}

ast::ExprPtr Parser::parse_primary() {
  SourceLoc loc = peek().loc;
  if (check(TokenKind::IntLit) || check(TokenKind::RealLit)) {
    const Token& t = advance();
    return ast::make_number(t.number, t.kind == TokenKind::IntLit, loc);
  }
  if (check(TokenKind::Ident)) {
    std::string name = advance().text;
    if (accept(TokenKind::LParen)) {
      return ast::make_apply(std::move(name), parse_arg_list(), loc);
    }
    return ast::make_var(std::move(name), loc);
  }
  if (accept(TokenKind::LParen)) {
    ast::ExprPtr e = parse_expr();
    expect(TokenKind::RParen, "closing parenthesized expression");
    return e;
  }
  diags_.error(loc, "expected an expression, found " + to_string(peek().kind));
  advance();
  return ast::make_number(0.0, true, loc);
}

bool Parser::at_block_terminator() {
  return !normalized_terminator(peek(), peek(1)).empty();
}

}  // namespace hpfsc::frontend

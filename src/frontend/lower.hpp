// Lowering from the parser's AST to the typed IR: builds the symbol
// table from declarations and HPF directives, classifies Apply nodes as
// array sections or shift intrinsics, and checks the affine-bounds
// restrictions of the stencil subset.
#pragma once

#include <optional>
#include <utility>

#include "frontend/ast.hpp"
#include "ir/program.hpp"
#include "support/diagnostics.hpp"

namespace hpfsc::frontend {

struct LowerResult {
  ir::Program program;
  /// PE grid suggested by a !HPF$ PROCESSORS directive (rows, cols).
  std::optional<std::pair<int, int>> processors;
};

/// Lowers `tree` to IR.  Semantic errors are reported to `diags`; the
/// returned program is only meaningful when !diags.has_errors().
[[nodiscard]] LowerResult lower(const ast::Program& tree,
                                DiagnosticEngine& diags);

/// Convenience: parse + lower.
[[nodiscard]] LowerResult lower_source(std::string_view source,
                                       DiagnosticEngine& diags);

}  // namespace hpfsc::frontend

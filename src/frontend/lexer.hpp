// Lexer for the Fortran90/HPF subset.  Handles free-form source with
// `&` continuation lines, `!` comments, `!HPF$` directive lines (emitted
// as Directive tokens), dotted relational operators (.GT. etc.), and
// case-insensitive identifiers (canonicalized to upper case).
#pragma once

#include <string_view>
#include <vector>

#include "frontend/token.hpp"
#include "support/diagnostics.hpp"

namespace hpfsc::frontend {

class Lexer {
 public:
  Lexer(std::string_view source, DiagnosticEngine& diags)
      : src_(source), diags_(diags) {}

  /// Tokenizes the whole input.  Statement boundaries appear as Newline
  /// tokens (continuations already spliced); the stream ends with
  /// EndOfFile.  Lexical errors are reported to the diagnostic engine
  /// and the offending characters skipped.
  [[nodiscard]] std::vector<Token> tokenize();

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance();
  [[nodiscard]] SourceLoc loc() const { return {line_, column_}; }

  void lex_line_into(std::vector<Token>& out);
  Token lex_number();
  Token lex_ident_or_dotted_op();

  std::string_view src_;
  DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t column_ = 1;
};

}  // namespace hpfsc::frontend

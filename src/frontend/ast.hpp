// Abstract syntax tree produced by the parser.  Deliberately loose
// (array references and intrinsic calls are both `Apply` nodes); the
// lowering step classifies names against the declarations and builds
// the typed IR.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/expr.hpp"
#include "support/source_location.hpp"

namespace hpfsc::frontend::ast {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  Number,  ///< numeric literal
  Var,     ///< bare identifier
  Apply,   ///< NAME(args): array section ref or intrinsic call
  Binary,
  Unary,   ///< unary minus
  Range,   ///< lo:hi inside an Apply argument (either side may be null)
};

/// An Apply argument, optionally keyworded (SHIFT=+1).
struct Arg {
  std::string keyword;  ///< empty when positional
  ExprPtr value;
};

struct Expr {
  ExprKind kind;
  SourceLoc loc;

  double number = 0.0;  ///< Number
  bool is_int = false;  ///< Number: lexed as an integer literal
  std::string name;     ///< Var / Apply
  std::vector<Arg> args;  ///< Apply
  ir::BinaryOp op = ir::BinaryOp::Add;  ///< Binary
  ExprPtr lhs;  ///< Binary left / Unary operand / Range lo
  ExprPtr rhs;  ///< Binary right / Range hi
};

ExprPtr make_number(double v, bool is_int, SourceLoc loc);
ExprPtr make_var(std::string name, SourceLoc loc);
ExprPtr make_apply(std::string name, std::vector<Arg> args, SourceLoc loc);
ExprPtr make_binary(ir::BinaryOp op, ExprPtr l, ExprPtr r, SourceLoc loc);
ExprPtr make_unary(ExprPtr operand, SourceLoc loc);
ExprPtr make_range(ExprPtr lo, ExprPtr hi, SourceLoc loc);

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
using Block = std::vector<StmtPtr>;

enum class StmtKind { Assign, Allocate, Deallocate, Call, If, Do };

struct Stmt {
  StmtKind kind;
  SourceLoc loc;

  // Assign: TARGET[(subscripts)] = rhs
  std::string target;
  std::vector<Arg> target_args;
  bool target_has_parens = false;
  ExprPtr rhs;

  // Allocate / Deallocate
  std::vector<std::string> names;

  // Call
  std::string callee;
  std::vector<Arg> call_args;

  // If
  ExprPtr cond;
  Block then_block;
  Block else_block;

  // Do
  std::string do_var;
  ExprPtr do_lo;
  ExprPtr do_hi;
  Block body;
};

/// One declared entity: NAME[(extents)] [= init].  A null extent means a
/// deferred shape dimension (ALLOCATABLE ':').
struct Entity {
  std::string name;
  std::vector<ExprPtr> dims;
  ExprPtr init;
  SourceLoc loc;
};

struct Decl {
  ir::ScalarType base = ir::ScalarType::Real;
  bool parameter = false;
  bool allocatable = false;
  std::vector<ExprPtr> dimension_attr;  ///< DIMENSION(...) attribute
  std::vector<Entity> entities;
  SourceLoc loc;
};

struct DistributeDirective {
  std::string array;
  std::vector<std::string> dist;  ///< "BLOCK" or "*" per dimension
  std::string onto;               ///< processor arrangement name ("" if none)
  SourceLoc loc;
};

struct ProcessorsDirective {
  std::string name;
  std::vector<int> extents;
  SourceLoc loc;
};

struct AlignDirective {
  std::string array;
  std::string target;
  SourceLoc loc;
};

struct Program {
  std::string name = "MAIN";
  std::vector<Decl> decls;
  std::vector<DistributeDirective> distributes;
  std::vector<ProcessorsDirective> processors;
  std::vector<AlignDirective> aligns;
  Block stmts;
};

}  // namespace hpfsc::frontend::ast

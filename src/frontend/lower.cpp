#include "frontend/lower.hpp"

#include <cmath>

#include "frontend/parser.hpp"

namespace hpfsc::frontend {

namespace {

using ir::AffineBound;
using ir::ArrayId;
using ir::ScalarId;

class Lowerer {
 public:
  Lowerer(const ast::Program& tree, DiagnosticEngine& diags)
      : tree_(tree), diags_(diags) {}

  LowerResult run() {
    LowerResult out;
    program_ = &out.program;
    program_->name = tree_.name;
    lower_decls();
    apply_directives(out);
    lower_block(tree_.stmts, program_->body);
    return out;
  }

 private:
  // ---------------------------------------------------- declarations --
  void lower_decls() {
    for (const ast::Decl& d : tree_.decls) {
      for (const ast::Entity& e : d.entities) {
        const std::vector<ast::ExprPtr>& dims =
            e.dims.empty() ? d.dimension_attr : e.dims;
        if (dims.empty()) {
          lower_scalar_decl(d, e);
        } else {
          lower_array_decl(d, e, dims);
        }
      }
    }
  }

  void lower_scalar_decl(const ast::Decl& d, const ast::Entity& e) {
    if (program_->symbols.find_scalar(e.name) ||
        program_->symbols.find_array(e.name)) {
      diags_.error(e.loc, "redeclaration of '" + e.name + "'");
      return;
    }
    ir::ScalarSymbol sym;
    sym.name = e.name;
    sym.type = d.base;
    sym.is_param = true;  // every declared scalar is bindable at run time
    if (e.init) {
      auto v = const_fold(*e.init);
      if (!v) {
        diags_.error(e.init->loc,
                     "initializer of '" + e.name + "' must be constant");
      } else {
        sym.init = *v;
      }
    } else if (d.parameter) {
      diags_.error(e.loc, "PARAMETER '" + e.name + "' lacks a value");
    }
    program_->symbols.add_scalar(std::move(sym));
  }

  void lower_array_decl(const ast::Decl& d, const ast::Entity& e,
                        const std::vector<ast::ExprPtr>& dims) {
    if (program_->symbols.find_scalar(e.name) ||
        program_->symbols.find_array(e.name)) {
      diags_.error(e.loc, "redeclaration of '" + e.name + "'");
      return;
    }
    if (d.base != ir::ScalarType::Real) {
      diags_.error(e.loc, "only REAL arrays are supported");
      return;
    }
    ir::ArraySymbol sym;
    sym.name = e.name;
    sym.rank = static_cast<int>(dims.size());
    if (sym.rank > ir::kMaxRank) {
      diags_.error(e.loc, "arrays of rank > " +
                              std::to_string(ir::kMaxRank) +
                              " are not supported");
      return;
    }
    for (int i = 0; i < sym.rank; ++i) {
      const ast::ExprPtr& dim = dims[static_cast<std::size_t>(i)];
      if (!dim) {
        diags_.error(e.loc, "deferred-shape array '" + e.name +
                                "' needs an explicit extent in this subset");
        return;
      }
      auto bound = affine(*dim);
      if (!bound) {
        diags_.error(dim->loc, "array extent must be affine (param +/- "
                               "constant) in '" + e.name + "'");
        return;
      }
      sym.extent[i] = *bound;
      // Default distribution: BLOCK on the first two dims, collapsed
      // beyond (overridden by !HPF$ DISTRIBUTE).
      sym.dist[i] = i < 2 ? ir::DistKind::Block : ir::DistKind::Collapsed;
    }
    program_->symbols.add_array(std::move(sym));
  }

  void apply_directives(LowerResult& out) {
    for (const ast::ProcessorsDirective& p : tree_.processors) {
      if (p.extents.size() > 2) {
        diags_.error(p.loc, "PROCESSORS arrangements of rank > 2 are not "
                            "supported");
        continue;
      }
      int rows = p.extents.empty() ? 1 : p.extents[0];
      int cols = p.extents.size() > 1 ? p.extents[1] : 1;
      out.processors = {rows, cols};
    }
    for (const ast::DistributeDirective& d : tree_.distributes) {
      auto id = program_->symbols.find_array(d.array);
      if (!id) {
        diags_.error(d.loc, "DISTRIBUTE names unknown array '" + d.array +
                                "'");
        continue;
      }
      ir::ArraySymbol& sym = program_->symbols.array(*id);
      if (static_cast<int>(d.dist.size()) != sym.rank) {
        diags_.error(d.loc, "DISTRIBUTE rank mismatch for '" + d.array + "'");
        continue;
      }
      for (int i = 0; i < sym.rank; ++i) {
        const std::string& spec = d.dist[static_cast<std::size_t>(i)];
        if (spec == "BLOCK") {
          sym.dist[i] = ir::DistKind::Block;
        } else if (spec == "*") {
          sym.dist[i] = ir::DistKind::Collapsed;
        } else {
          diags_.error(d.loc, "unsupported distribution '" + spec +
                                  "' (only BLOCK and * are supported)");
        }
      }
    }
    for (const ast::AlignDirective& a : tree_.aligns) {
      auto src = program_->symbols.find_array(a.array);
      auto dst = program_->symbols.find_array(a.target);
      if (!src || !dst) {
        diags_.error(a.loc, "ALIGN names unknown array");
        continue;
      }
      ir::ArraySymbol& s = program_->symbols.array(*src);
      const ir::ArraySymbol& t = program_->symbols.array(*dst);
      if (s.rank != t.rank) {
        diags_.error(a.loc, "ALIGN rank mismatch between '" + a.array +
                                "' and '" + a.target + "'");
        continue;
      }
      s.dist = t.dist;
    }
  }

  // ------------------------------------------------------ statements --
  void lower_block(const ast::Block& in, ir::Block& out) {
    for (const ast::StmtPtr& s : in) lower_stmt(*s, out);
  }

  void lower_stmt(const ast::Stmt& s, ir::Block& out) {
    switch (s.kind) {
      case ast::StmtKind::Assign:
        lower_assign(s, out);
        return;
      case ast::StmtKind::Allocate:
      case ast::StmtKind::Deallocate: {
        std::vector<ArrayId> ids;
        for (const std::string& name : s.names) {
          auto id = program_->symbols.find_array(name);
          if (!id) {
            diags_.error(s.loc, "ALLOCATE/DEALLOCATE of unknown array '" +
                                    name + "'");
            continue;
          }
          ids.push_back(*id);
        }
        if (s.kind == ast::StmtKind::Allocate) {
          auto stmt = std::make_unique<ir::AllocStmt>();
          stmt->loc = s.loc;
          stmt->arrays = std::move(ids);
          out.push_back(std::move(stmt));
        } else {
          auto stmt = std::make_unique<ir::FreeStmt>();
          stmt->loc = s.loc;
          stmt->arrays = std::move(ids);
          out.push_back(std::move(stmt));
        }
        return;
      }
      case ast::StmtKind::Call:
        diags_.error(s.loc, "CALL '" + s.callee +
                                "' is not supported in input programs "
                                "(OVERLAP_CSHIFT is compiler-generated)");
        return;
      case ast::StmtKind::If: {
        auto stmt = std::make_unique<ir::IfStmt>();
        stmt->loc = s.loc;
        stmt->cond = lower_scalar_expr(*s.cond);
        lower_block(s.then_block, stmt->then_block);
        lower_block(s.else_block, stmt->else_block);
        out.push_back(std::move(stmt));
        return;
      }
      case ast::StmtKind::Do: {
        auto stmt = std::make_unique<ir::DoStmt>();
        stmt->loc = s.loc;
        auto var = program_->symbols.find_scalar(s.do_var);
        if (!var) {
          // Implicitly declare the loop variable as an integer scalar
          // (Fortran implicit typing for I..N names).
          ir::ScalarSymbol sym;
          sym.name = s.do_var;
          sym.type = ir::ScalarType::Integer;
          sym.is_param = false;
          var = program_->symbols.add_scalar(std::move(sym));
        }
        stmt->var = *var;
        auto lo = affine(*s.do_lo);
        auto hi = affine(*s.do_hi);
        if (!lo || !hi) {
          diags_.error(s.loc, "DO bounds must be affine (param +/- const)");
          return;
        }
        stmt->lo = *lo;
        stmt->hi = *hi;
        lower_block(s.body, stmt->body);
        out.push_back(std::move(stmt));
        return;
      }
    }
  }

  void lower_assign(const ast::Stmt& s, ir::Block& out) {
    if (auto scalar = program_->symbols.find_scalar(s.target)) {
      if (s.target_has_parens) {
        diags_.error(s.loc, "'" + s.target + "' is scalar but subscripted");
        return;
      }
      auto stmt = std::make_unique<ir::ScalarAssignStmt>();
      stmt->loc = s.loc;
      stmt->scalar = *scalar;
      stmt->rhs = lower_scalar_expr(*s.rhs);
      out.push_back(std::move(stmt));
      return;
    }
    auto array = program_->symbols.find_array(s.target);
    if (!array) {
      diags_.error(s.loc, "assignment to undeclared name '" + s.target + "'");
      return;
    }
    auto stmt = std::make_unique<ir::ArrayAssignStmt>();
    stmt->loc = s.loc;
    stmt->lhs = lower_section_ref(*array, s.target_args, s.loc);
    stmt->rhs = lower_array_expr(*s.rhs);
    if (stmt->rhs) out.push_back(std::move(stmt));
  }

  // ----------------------------------------------------- expressions --
  ir::ArrayRef lower_section_ref(ArrayId id, const std::vector<ast::Arg>& args,
                                 SourceLoc loc) {
    ir::ArrayRef ref;
    ref.array = id;
    const ir::ArraySymbol& sym = program_->symbols.array(id);
    if (args.empty()) return ref;  // whole-array reference
    if (static_cast<int>(args.size()) != sym.rank) {
      diags_.error(loc, "'" + sym.name + "' has rank " +
                            std::to_string(sym.rank) + " but " +
                            std::to_string(args.size()) +
                            " subscripts were given");
      return ref;
    }
    for (int d = 0; d < sym.rank; ++d) {
      const ast::Arg& a = args[static_cast<std::size_t>(d)];
      if (!a.keyword.empty()) {
        diags_.error(a.value->loc, "keyword argument in array section");
        return ref;
      }
      ir::SectionRange r;
      if (a.value->kind == ast::ExprKind::Range) {
        if (a.value->lhs) {
          auto lo = affine(*a.value->lhs);
          if (!lo) {
            diags_.error(a.value->loc, "section bound must be affine");
            return ref;
          }
          r.lo = *lo;
        } else {
          r.lo = AffineBound(1);
        }
        if (a.value->rhs) {
          auto hi = affine(*a.value->rhs);
          if (!hi) {
            diags_.error(a.value->loc, "section bound must be affine");
            return ref;
          }
          r.hi = *hi;
        } else {
          r.hi = sym.extent[d];
        }
      } else {
        auto idx = affine(*a.value);
        if (!idx) {
          diags_.error(a.value->loc, "subscript must be affine "
                                     "(param +/- constant)");
          return ref;
        }
        r.lo = *idx;
        r.hi = *idx;
      }
      ref.section.push_back(r);
    }
    return ref;
  }

  ir::ExprPtr lower_array_expr(const ast::Expr& e) {
    switch (e.kind) {
      case ast::ExprKind::Number:
        return ir::make_const(e.number, e.loc);
      case ast::ExprKind::Var: {
        if (auto s = program_->symbols.find_scalar(e.name)) {
          return ir::make_scalar_ref(*s, e.loc);
        }
        if (auto a = program_->symbols.find_array(e.name)) {
          ir::ArrayRef ref;
          ref.array = *a;
          return ir::make_array_ref(std::move(ref), e.loc);
        }
        diags_.error(e.loc, "use of undeclared name '" + e.name + "'");
        return ir::make_const(0.0, e.loc);
      }
      case ast::ExprKind::Apply:
        return lower_apply(e);
      case ast::ExprKind::Binary: {
        ir::ExprPtr l = lower_array_expr(*e.lhs);
        ir::ExprPtr r = lower_array_expr(*e.rhs);
        return ir::make_binary(e.op, std::move(l), std::move(r), e.loc);
      }
      case ast::ExprKind::Unary:
        return ir::make_unary_neg(lower_array_expr(*e.lhs), e.loc);
      case ast::ExprKind::Range:
        diags_.error(e.loc, "unexpected section range in expression");
        return ir::make_const(0.0, e.loc);
    }
    return ir::make_const(0.0, e.loc);
  }

  ir::ExprPtr lower_apply(const ast::Expr& e) {
    if (e.name == "CSHIFT" || e.name == "EOSHIFT") {
      return lower_shift(e);
    }
    if (auto a = program_->symbols.find_array(e.name)) {
      return ir::make_array_ref(lower_section_ref(*a, e.args, e.loc), e.loc);
    }
    diags_.error(e.loc, "call of unknown function '" + e.name + "'");
    return ir::make_const(0.0, e.loc);
  }

  ir::ExprPtr lower_shift(const ast::Expr& e) {
    const bool eo = e.name == "EOSHIFT";
    const ast::Expr* array_arg = nullptr;
    const ast::Expr* shift_arg = nullptr;
    const ast::Expr* dim_arg = nullptr;
    const ast::Expr* boundary_arg = nullptr;
    int positional = 0;
    for (const ast::Arg& a : e.args) {
      if (a.keyword.empty()) {
        switch (positional++) {
          case 0: array_arg = a.value.get(); break;
          case 1: shift_arg = a.value.get(); break;
          case 2:
            if (eo) {
              boundary_arg = a.value.get();
            } else {
              dim_arg = a.value.get();
            }
            break;
          case 3:
            if (eo) {
              dim_arg = a.value.get();
            } else {
              diags_.error(a.value->loc, "too many CSHIFT arguments");
            }
            break;
          default:
            diags_.error(a.value->loc, "too many shift arguments");
        }
      } else if (a.keyword == "SHIFT") {
        shift_arg = a.value.get();
      } else if (a.keyword == "DIM") {
        dim_arg = a.value.get();
      } else if (a.keyword == "BOUNDARY" && eo) {
        boundary_arg = a.value.get();
      } else if (a.keyword == "ARRAY") {
        array_arg = a.value.get();
      } else {
        diags_.error(a.value->loc,
                     "unknown keyword '" + a.keyword + "' in " + e.name);
      }
    }
    if (array_arg == nullptr || shift_arg == nullptr) {
      diags_.error(e.loc, e.name + " requires ARRAY and SHIFT arguments");
      return ir::make_const(0.0, e.loc);
    }
    auto shift = const_fold_int(*shift_arg);
    if (!shift) {
      diags_.error(shift_arg->loc, "SHIFT must be an integer constant");
      return ir::make_const(0.0, e.loc);
    }
    int dim = 1;
    if (dim_arg != nullptr) {
      auto d = const_fold_int(*dim_arg);
      if (!d) {
        diags_.error(dim_arg->loc, "DIM must be an integer constant");
        return ir::make_const(0.0, e.loc);
      }
      dim = *d;
    }
    ir::ExprPtr boundary;
    if (eo) {
      boundary = boundary_arg != nullptr ? lower_scalar_expr(*boundary_arg)
                                         : ir::make_const(0.0, e.loc);
    }
    ir::ExprPtr arg = lower_array_expr(*array_arg);
    return ir::make_shift(
        eo ? ir::ShiftIntrinsic::EoShift : ir::ShiftIntrinsic::CShift,
        std::move(arg), *shift, dim - 1, std::move(boundary), e.loc);
  }

  /// Scalar-context expression: array references are rejected.
  ir::ExprPtr lower_scalar_expr(const ast::Expr& e) {
    switch (e.kind) {
      case ast::ExprKind::Number:
        return ir::make_const(e.number, e.loc);
      case ast::ExprKind::Var: {
        if (auto s = program_->symbols.find_scalar(e.name)) {
          return ir::make_scalar_ref(*s, e.loc);
        }
        diags_.error(e.loc, "'" + e.name + "' is not a scalar");
        return ir::make_const(0.0, e.loc);
      }
      case ast::ExprKind::Binary:
        return ir::make_binary(e.op, lower_scalar_expr(*e.lhs),
                               lower_scalar_expr(*e.rhs), e.loc);
      case ast::ExprKind::Unary:
        return ir::make_unary_neg(lower_scalar_expr(*e.lhs), e.loc);
      case ast::ExprKind::Apply:
      case ast::ExprKind::Range:
        diags_.error(e.loc, "expected a scalar expression");
        return ir::make_const(0.0, e.loc);
    }
    return ir::make_const(0.0, e.loc);
  }

  // -------------------------------------------------------- helpers --
  /// Folds constant numeric expressions (literals, declared PARAMETERs,
  /// + - * / and unary minus over them).
  std::optional<double> const_fold(const ast::Expr& e) const {
    switch (e.kind) {
      case ast::ExprKind::Number:
        return e.number;
      case ast::ExprKind::Var: {
        if (auto s = program_->symbols.find_scalar(e.name)) {
          const ir::ScalarSymbol& sym = program_->symbols.scalar(*s);
          if (sym.init) return sym.init;
        }
        return std::nullopt;
      }
      case ast::ExprKind::Binary: {
        auto l = const_fold(*e.lhs);
        auto r = const_fold(*e.rhs);
        if (!l || !r) return std::nullopt;
        switch (e.op) {
          case ir::BinaryOp::Add: return *l + *r;
          case ir::BinaryOp::Sub: return *l - *r;
          case ir::BinaryOp::Mul: return *l * *r;
          case ir::BinaryOp::Div:
            if (*r == 0.0) return std::nullopt;
            return *l / *r;
          default: return std::nullopt;
        }
      }
      case ast::ExprKind::Unary: {
        auto v = const_fold(*e.lhs);
        if (!v) return std::nullopt;
        return -*v;
      }
      default:
        return std::nullopt;
    }
  }

  std::optional<int> const_fold_int(const ast::Expr& e) const {
    auto v = const_fold(e);
    if (!v) return std::nullopt;
    if (*v != std::floor(*v)) return std::nullopt;
    return static_cast<int>(*v);
  }

  /// Lowers an expression to `param + constant` form when possible.
  std::optional<AffineBound> affine(const ast::Expr& e) const {
    switch (e.kind) {
      case ast::ExprKind::Number:
        if (e.number != std::floor(e.number)) return std::nullopt;
        return AffineBound(static_cast<int>(e.number));
      case ast::ExprKind::Var: {
        auto s = program_->symbols.find_scalar(e.name);
        if (!s) return std::nullopt;
        const ir::ScalarSymbol& sym = program_->symbols.scalar(*s);
        if (sym.type != ir::ScalarType::Integer) return std::nullopt;
        return AffineBound(e.name, 0);
      }
      case ast::ExprKind::Binary: {
        auto l = affine(*e.lhs);
        auto r = affine(*e.rhs);
        if (!l || !r) return std::nullopt;
        if (e.op == ir::BinaryOp::Add) {
          if (!l->param.empty() && !r->param.empty()) return std::nullopt;
          std::string p = l->param.empty() ? r->param : l->param;
          return AffineBound(p, l->constant + r->constant);
        }
        if (e.op == ir::BinaryOp::Sub) {
          if (!r->param.empty()) {
            // N - N folds; anything else with a param subtrahend doesn't.
            if (l->param == r->param) {
              return AffineBound(l->constant - r->constant);
            }
            return std::nullopt;
          }
          return AffineBound(l->param, l->constant - r->constant);
        }
        if (e.op == ir::BinaryOp::Mul && l->param.empty() &&
            r->param.empty()) {
          return AffineBound(l->constant * r->constant);
        }
        return std::nullopt;
      }
      case ast::ExprKind::Unary: {
        auto v = affine(*e.lhs);
        if (!v || !v->param.empty()) return std::nullopt;
        return AffineBound(-v->constant);
      }
      default:
        return std::nullopt;
    }
  }

  const ast::Program& tree_;
  DiagnosticEngine& diags_;
  ir::Program* program_ = nullptr;
};

}  // namespace

LowerResult lower(const ast::Program& tree, DiagnosticEngine& diags) {
  return Lowerer(tree, diags).run();
}

LowerResult lower_source(std::string_view source, DiagnosticEngine& diags) {
  ast::Program tree = Parser::parse_source(source, diags);
  if (diags.has_errors()) return LowerResult{};
  return lower(tree, diags);
}

}  // namespace hpfsc::frontend

#include "frontend/lexer.hpp"

#include <cctype>
#include <cstdlib>

#include "support/text.hpp"

namespace hpfsc::frontend {

std::string to_string(TokenKind k) {
  switch (k) {
    case TokenKind::Ident: return "identifier";
    case TokenKind::IntLit: return "integer literal";
    case TokenKind::RealLit: return "real literal";
    case TokenKind::Plus: return "'+'";
    case TokenKind::Minus: return "'-'";
    case TokenKind::Star: return "'*'";
    case TokenKind::Slash: return "'/'";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::Comma: return "','";
    case TokenKind::Colon: return "':'";
    case TokenKind::DoubleColon: return "'::'";
    case TokenKind::Assign: return "'='";
    case TokenKind::Lt: return "'<'";
    case TokenKind::Le: return "'<='";
    case TokenKind::Gt: return "'>'";
    case TokenKind::Ge: return "'>='";
    case TokenKind::EqEq: return "'=='";
    case TokenKind::Ne: return "'/='";
    case TokenKind::Directive: return "HPF directive";
    case TokenKind::Newline: return "end of statement";
    case TokenKind::EndOfFile: return "end of input";
  }
  return "?";
}

char Lexer::advance() {
  char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> out;
  bool continuation = false;
  while (!at_end()) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r') {
      advance();
      continue;
    }
    if (c == '\n') {
      advance();
      if (continuation) {
        continuation = false;
      } else if (!out.empty() && out.back().kind != TokenKind::Newline &&
                 out.back().kind != TokenKind::Directive) {
        out.push_back(Token{TokenKind::Newline, "", 0.0, loc()});
      }
      continue;
    }
    if (c == '!') {
      // "!HPF$" directive or plain comment; both run to end of line.
      SourceLoc start = loc();
      std::size_t line_end = src_.find('\n', pos_);
      if (line_end == std::string_view::npos) line_end = src_.size();
      std::string text(src_.substr(pos_, line_end - pos_));
      std::string upper = hpfsc::to_upper(text);
      while (pos_ < line_end) advance();
      if (upper.starts_with("!HPF$")) {
        out.push_back(Token{TokenKind::Directive, upper.substr(5), 0.0, start});
      }
      continue;
    }
    if (c == '&') {
      advance();
      // Trailing '&' splices the following line break; a leading '&' on
      // a continuation line is simply skipped.  Distinguish by looking
      // ahead: only spaces/comment may follow a trailing '&'.
      std::size_t look = pos_;
      while (look < src_.size() &&
             (src_[look] == ' ' || src_[look] == '\t' || src_[look] == '\r')) {
        ++look;
      }
      if (look >= src_.size() || src_[look] == '\n' || src_[look] == '!') {
        continuation = true;
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      out.push_back(lex_number());
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.') {
      out.push_back(lex_ident_or_dotted_op());
      continue;
    }
    SourceLoc start = loc();
    advance();
    switch (c) {
      case '+': out.push_back({TokenKind::Plus, "+", 0.0, start}); break;
      case '-': out.push_back({TokenKind::Minus, "-", 0.0, start}); break;
      case '*': out.push_back({TokenKind::Star, "*", 0.0, start}); break;
      case '(': out.push_back({TokenKind::LParen, "(", 0.0, start}); break;
      case ')': out.push_back({TokenKind::RParen, ")", 0.0, start}); break;
      case ',': out.push_back({TokenKind::Comma, ",", 0.0, start}); break;
      case ':':
        if (peek() == ':') {
          advance();
          out.push_back({TokenKind::DoubleColon, "::", 0.0, start});
        } else {
          out.push_back({TokenKind::Colon, ":", 0.0, start});
        }
        break;
      case '=':
        if (peek() == '=') {
          advance();
          out.push_back({TokenKind::EqEq, "==", 0.0, start});
        } else {
          out.push_back({TokenKind::Assign, "=", 0.0, start});
        }
        break;
      case '<':
        if (peek() == '=') {
          advance();
          out.push_back({TokenKind::Le, "<=", 0.0, start});
        } else {
          out.push_back({TokenKind::Lt, "<", 0.0, start});
        }
        break;
      case '>':
        if (peek() == '=') {
          advance();
          out.push_back({TokenKind::Ge, ">=", 0.0, start});
        } else {
          out.push_back({TokenKind::Gt, ">", 0.0, start});
        }
        break;
      case '/':
        if (peek() == '=') {
          advance();
          out.push_back({TokenKind::Ne, "/=", 0.0, start});
        } else {
          out.push_back({TokenKind::Slash, "/", 0.0, start});
        }
        break;
      default:
        diags_.error(start, std::string("unexpected character '") + c + "'");
        break;
    }
  }
  if (!out.empty() && out.back().kind != TokenKind::Newline) {
    out.push_back(Token{TokenKind::Newline, "", 0.0, loc()});
  }
  out.push_back(Token{TokenKind::EndOfFile, "", 0.0, loc()});
  return out;
}

Token Lexer::lex_number() {
  SourceLoc start = loc();
  std::string text;
  bool is_real = false;
  while (std::isdigit(static_cast<unsigned char>(peek()))) text += advance();
  if (peek() == '.' && !std::isalpha(static_cast<unsigned char>(peek(1)))) {
    // A '.' followed by a letter starts a dotted operator (e.g. 2.GT.1).
    is_real = true;
    text += advance();
    while (std::isdigit(static_cast<unsigned char>(peek()))) text += advance();
  }
  char e = peek();
  if (e == 'e' || e == 'E' || e == 'd' || e == 'D') {
    char sign = peek(1);
    if (std::isdigit(static_cast<unsigned char>(sign)) ||
        ((sign == '+' || sign == '-') &&
         std::isdigit(static_cast<unsigned char>(peek(2))))) {
      is_real = true;
      advance();
      text += 'e';
      if (sign == '+' || sign == '-') text += advance();
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        text += advance();
      }
    }
  }
  Token t;
  t.kind = is_real ? TokenKind::RealLit : TokenKind::IntLit;
  t.text = text;
  t.number = std::strtod(text.c_str(), nullptr);
  t.loc = start;
  return t;
}

Token Lexer::lex_ident_or_dotted_op() {
  SourceLoc start = loc();
  if (peek() == '.') {
    advance();
    std::string word;
    while (std::isalpha(static_cast<unsigned char>(peek()))) word += advance();
    if (peek() == '.') {
      advance();
    } else {
      diags_.error(start, "malformed dotted operator '." + word + "'");
    }
    std::string upper = hpfsc::to_upper(word);
    auto tok = [&](TokenKind k, const char* s) {
      return Token{k, s, 0.0, start};
    };
    if (upper == "LT") return tok(TokenKind::Lt, "<");
    if (upper == "LE") return tok(TokenKind::Le, "<=");
    if (upper == "GT") return tok(TokenKind::Gt, ">");
    if (upper == "GE") return tok(TokenKind::Ge, ">=");
    if (upper == "EQ") return tok(TokenKind::EqEq, "==");
    if (upper == "NE") return tok(TokenKind::Ne, "/=");
    if (upper == "TRUE") return Token{TokenKind::IntLit, "1", 1.0, start};
    if (upper == "FALSE") return Token{TokenKind::IntLit, "0", 0.0, start};
    diags_.error(start, "unsupported dotted operator '." + upper + ".'");
    return Token{TokenKind::IntLit, "0", 0.0, start};
  }
  std::string word;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
    word += advance();
  }
  return Token{TokenKind::Ident, hpfsc::to_upper(word), 0.0, start};
}

}  // namespace hpfsc::frontend

#include "frontend/ast.hpp"

namespace hpfsc::frontend::ast {

ExprPtr make_number(double v, bool is_int, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Number;
  e->number = v;
  e->is_int = is_int;
  e->loc = loc;
  return e;
}

ExprPtr make_var(std::string name, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Var;
  e->name = std::move(name);
  e->loc = loc;
  return e;
}

ExprPtr make_apply(std::string name, std::vector<Arg> args, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Apply;
  e->name = std::move(name);
  e->args = std::move(args);
  e->loc = loc;
  return e;
}

ExprPtr make_binary(ir::BinaryOp op, ExprPtr l, ExprPtr r, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Binary;
  e->op = op;
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  e->loc = loc;
  return e;
}

ExprPtr make_unary(ExprPtr operand, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Unary;
  e->lhs = std::move(operand);
  e->loc = loc;
  return e;
}

ExprPtr make_range(ExprPtr lo, ExprPtr hi, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Range;
  e->lhs = std::move(lo);
  e->rhs = std::move(hi);
  e->loc = loc;
  return e;
}

}  // namespace hpfsc::frontend::ast

// Recursive-descent parser for the Fortran90/HPF subset.
#pragma once

#include <string_view>
#include <vector>

#include "frontend/ast.hpp"
#include "frontend/token.hpp"
#include "support/diagnostics.hpp"

namespace hpfsc::frontend {

class Parser {
 public:
  Parser(std::vector<Token> tokens, DiagnosticEngine& diags)
      : tokens_(std::move(tokens)), diags_(diags) {}

  /// Parses a whole program.  Errors are reported to the diagnostic
  /// engine; parsing recovers at statement boundaries, so a best-effort
  /// AST is always returned (check diags.has_errors()).
  [[nodiscard]] ast::Program parse_program();

  /// Convenience: lex + parse.
  static ast::Program parse_source(std::string_view source,
                                   DiagnosticEngine& diags);

 private:
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const;
  const Token& advance();
  [[nodiscard]] bool check(TokenKind k) const { return peek().kind == k; }
  [[nodiscard]] bool check_ident(const std::string& name) const {
    return peek().is_ident(name);
  }
  bool accept(TokenKind k);
  bool accept_ident(const std::string& name);
  const Token& expect(TokenKind k, const std::string& context);
  void expect_end_of_stmt();
  void skip_newlines();
  void sync_to_stmt_end();

  /// True when the upcoming END (+IDENT) closes the given construct.
  [[nodiscard]] bool at_block_terminator();

  void parse_directive(const Token& tok, ast::Program& out);
  void parse_decl(ast::Program& out);
  ast::StmtPtr parse_statement();
  ast::Block parse_block(const std::vector<std::string>& terminators,
                         std::string* hit = nullptr);
  ast::StmtPtr parse_if();
  ast::StmtPtr parse_do();
  ast::StmtPtr parse_allocate(bool is_alloc);
  ast::StmtPtr parse_call();
  ast::StmtPtr parse_assignment();
  std::vector<ast::Arg> parse_arg_list();
  ast::ExprPtr parse_expr();
  ast::ExprPtr parse_relational();
  ast::ExprPtr parse_additive();
  ast::ExprPtr parse_multiplicative();
  ast::ExprPtr parse_unary();
  ast::ExprPtr parse_primary();

  std::vector<Token> tokens_;
  DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
};

}  // namespace hpfsc::frontend

// Token definitions for the Fortran90/HPF subset.
#pragma once

#include <string>

#include "support/source_location.hpp"

namespace hpfsc::frontend {

enum class TokenKind {
  Ident,      ///< identifiers and keywords (case-insensitive, upper-cased)
  IntLit,     ///< 123
  RealLit,    ///< 1.5, .25, 1E-3
  Plus,
  Minus,
  Star,
  Slash,
  LParen,
  RParen,
  Comma,
  Colon,
  DoubleColon,
  Assign,      ///< =
  Lt,          ///< <  or .LT.
  Le,          ///< <= or .LE.
  Gt,          ///< >  or .GT.
  Ge,          ///< >= or .GE.
  EqEq,        ///< == or .EQ.
  Ne,          ///< /= or .NE.
  Directive,   ///< a whole !HPF$ directive line (payload in text)
  Newline,     ///< statement separator
  EndOfFile,
};

struct Token {
  TokenKind kind = TokenKind::EndOfFile;
  std::string text;      ///< upper-cased for Ident; raw for literals
  double number = 0.0;   ///< value for IntLit/RealLit
  SourceLoc loc;

  [[nodiscard]] bool is_ident(const std::string& upper_name) const {
    return kind == TokenKind::Ident && text == upper_name;
  }
};

[[nodiscard]] std::string to_string(TokenKind k);

}  // namespace hpfsc::frontend

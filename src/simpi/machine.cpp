#include "simpi/machine.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string_view>
#include <thread>

namespace simpi {

namespace {

/// Busy-wait for `ns` nanoseconds (used for message-cost emulation; a
/// sleep would be too coarse and too jittery at microsecond scales).
void spin_for_ns(std::uint64_t ns) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < deadline) {
    // spin
  }
}

/// Steady-clock nanosecond stamp for wait-state accounting.  All
/// wait-state arithmetic happens on this one clock so the categories
/// reconcile against wall time without cross-clock skew.
std::uint64_t wait_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Tees one blocked interval into the flight recorder as a Counter
/// event (value = nanoseconds blocked).  Only called after an actual
/// cv wait, so the fast paths stay emit-free.
void flight_wait(const char* name, std::uint64_t ns, int track) {
  auto& fr = hpfsc::obs::FlightRecorder::instance();
  if (!fr.enabled()) return;
  hpfsc::obs::FlightEvent ev;
  ev.kind = hpfsc::obs::FlightEvent::Kind::Counter;
  ev.ts_ns = fr.now_ns();
  ev.value = static_cast<double>(ns);
  ev.track = track;
  ev.request_id = hpfsc::obs::current_request_id();
  ev.set_name(name);
  fr.emit(ev);
}

}  // namespace

// ---------------------------------------------------------------- Pe --

void Pe::send(int dst, std::span<const double> data) {
  const std::size_t bytes = data.size_bytes();
  stats_.messages_sent += 1;
  stats_.bytes_sent += bytes;
  const std::uint64_t cost = machine_.config().cost.message_cost_ns(bytes);
  stats_.modeled_comm_ns += cost;
  if (machine_.config().cost.emulate) spin_for_ns(cost);

  Machine::Channel& ch = machine_.channel(id_, dst);
  {
    std::lock_guard lock(ch.mutex);
    ch.queue.emplace_back(data.begin(), data.end());
  }
  ch.cv.notify_all();
}

void Pe::charge_intra_copy(std::size_t bytes) {
  stats_.intra_copy_bytes += bytes;
  const std::uint64_t cost = machine_.config().cost.copy_cost_ns(bytes);
  if (cost == 0) return;
  stats_.modeled_copy_ns += cost;
  if (machine_.config().cost.emulate) spin_for_ns(cost);
}

void Pe::charge_kernel_refs(std::size_t bytes) {
  stats_.kernel_ref_bytes += bytes;
  const std::uint64_t cost =
      machine_.config().cost.kernel_ref_cost_ns(bytes);
  if (cost == 0) return;
  stats_.modeled_copy_ns += cost;
  if (machine_.config().cost.emulate) spin_for_ns(cost);
}

void Pe::note_context_transfer(int array_id, const char* array_name, int dim,
                               int dir, const char* kind) {
  const auto slot = static_cast<std::size_t>(array_id);
  if (slot >= context_transfers_.size()) context_transfers_.resize(slot + 1);
  const std::uint32_t n = ++context_transfers_[slot][static_cast<std::size_t>(
      dim)][static_cast<std::size_t>(dir)];
  if (n > 1 && machine_.comm_invariant()) {
    const std::string message =
        "PE " + std::to_string(id_) + ": " + std::string(kind) +
        " transfer #" + std::to_string(n) + " of array " +
        std::string(array_name) + " in dim " + std::to_string(dim + 1) +
        ", direction " + (dir == 1 ? std::string("+") : std::string("-")) +
        " within one statement context (unioning guarantees one message "
        "per direction per dimension per array)";
    // Preserve the evidence before unwinding: the violating statement's
    // span history is still in the per-thread rings at this point.
    hpfsc::obs::FlightRecorder::instance().note_incident("comm-invariant",
                                                         message);
    throw CommInvariantViolation(message);
  }
}

void Pe::reset_comm_context() {
  for (auto& per_array : context_transfers_) {
    for (auto& dims : per_array) dims.fill(0);
  }
}

std::vector<double> Pe::recv(int src, int dim, int dir, WaitBucket bucket) {
  Machine::Channel& ch = machine_.channel(src, id_);
  std::unique_lock lock(ch.mutex);
  if (ch.queue.empty() && !machine_.aborted_.load()) {
    // The message has not arrived: this PE is about to block, which is
    // the exposed-communication time the wait profile attributes.  The
    // fast path above (message queued) reads no clock at all.  Gated on
    // the per-run latch (not the live flag) so a mid-run toggle cannot
    // charge recv waits into a run whose active window is untimed.
    if (machine_.pool_timed_) {
      const std::uint64_t t0 = wait_now_ns();
      ch.cv.wait(lock, [&] {
        return !ch.queue.empty() || machine_.aborted_.load();
      });
      const std::uint64_t blocked = wait_now_ns() - t0;
      if (bucket == WaitBucket::Overlap) {
        // Residual communication the interior/boundary overlap did not
        // hide; its own bucket so the reconciliation stays exact and
        // the recovered fraction is directly readable.
        stats_.wait.overlap_wait_ns += blocked;
        flight_wait("wait.overlap_ns", blocked, hpfsc::obs::pe_track(id_));
      } else {
        stats_.wait.recv_wait_ns += blocked;
        if (dim >= 0 && dim < static_cast<int>(kCommDims) && dir >= 0 &&
            dir < static_cast<int>(kCommDirs)) {
          stats_.wait.recv_dim_dir[static_cast<std::size_t>(dim)]
                                  [static_cast<std::size_t>(dir)] += blocked;
        }
        flight_wait("wait.recv_ns", blocked, hpfsc::obs::pe_track(id_));
      }
    } else {
      ch.cv.wait(lock, [&] {
        return !ch.queue.empty() || machine_.aborted_.load();
      });
    }
  }
  if (ch.queue.empty()) throw Aborted();
  std::vector<double> msg = std::move(ch.queue.front());
  ch.queue.pop_front();
  return msg;
}

void Pe::barrier() {
  const std::uint64_t blocked = machine_.barrier_wait();
  if (blocked > 0) {
    stats_.wait.barrier_wait_ns += blocked;
    flight_wait("wait.barrier_ns", blocked, hpfsc::obs::pe_track(id_));
  }
}

LocalGrid& Pe::create_array(int id, const DistArrayDesc& desc) {
  auto slot = static_cast<std::size_t>(id);
  if (slot >= slots_.size()) slots_.resize(slot + 1);
  slots_[slot] = std::make_unique<LocalGrid>(desc, machine_.grid(), id_,
                                             arena_);
  stats_.peak_heap_bytes = std::max(stats_.peak_heap_bytes, arena_.peak());
  return *slots_[slot];
}

void Pe::free_array(int id) {
  auto slot = static_cast<std::size_t>(id);
  if (slot < slots_.size()) slots_[slot].reset();
}

LocalGrid& Pe::grid(int id) {
  auto slot = static_cast<std::size_t>(id);
  if (slot >= slots_.size() || slots_[slot] == nullptr) {
    throw std::logic_error("PE " + std::to_string(id_) +
                           ": array slot " + std::to_string(id) +
                           " is not allocated");
  }
  return *slots_[slot];
}

bool Pe::has_array(int id) const {
  auto slot = static_cast<std::size_t>(id);
  return slot < slots_.size() && slots_[slot] != nullptr;
}

// ----------------------------------------------------------- Machine --

Machine::Machine(const MachineConfig& config)
    : config_(config), grid_(config.pe_rows, config.pe_cols) {
  if (config.pe_rows < 1 || config.pe_cols < 1) {
    throw std::invalid_argument("Machine: PE grid dims must be >= 1");
  }
  if (const char* env = std::getenv("HPFSC_COMM_INVARIANT")) {
    comm_invariant_ = *env != '\0' && !(env[0] == '0' && env[1] == '\0');
  }
  if (const char* env = std::getenv("HPFSC_WAIT_TIMING")) {
    wait_timing_.store(!(env[0] == '0' && env[1] == '\0'),
                       std::memory_order_relaxed);
  }
  CommBackendKind backend = config.comm_backend;
  if (const char* env = std::getenv("HPFSC_COMM_BACKEND")) {
    const std::string_view v = env;
    if (v == "sync") {
      backend = CommBackendKind::Sync;
    } else if (v == "async") {
      backend = CommBackendKind::Async;
    } else if (!v.empty()) {
      // Like HPFSC_KERNEL_TIER: a typo must not silently run the
      // default backend.
      throw std::invalid_argument("HPFSC_COMM_BACKEND='" + std::string(v) +
                                  "': accepted values are sync, async");
    }
  }
  comm_backend_ = make_comm_backend(backend);
  const int p = grid_.size();
  pes_.reserve(static_cast<std::size_t>(p));
  for (int id = 0; id < p; ++id) {
    auto coords = grid_.coords_of(id);
    pes_.push_back(std::make_unique<Pe>(*this, id, coords[0], coords[1],
                                        config.per_pe_heap_bytes));
  }
  channels_ = std::vector<Channel>(static_cast<std::size_t>(p * p));
}

Machine::~Machine() {
  {
    std::lock_guard lock(pool_mutex_);
    pool_stopping_ = true;
  }
  pool_cv_.notify_all();
  // workers_ are jthreads: joined on destruction.
}

void Machine::ensure_workers() {
  if (!workers_.empty()) return;
  const int p = num_pes();
  workers_.reserve(static_cast<std::size_t>(p));
  for (int id = 0; id < p; ++id) {
    workers_.emplace_back([this, id] { worker_loop(id); });
  }
}

void Machine::worker_loop(int id) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(Pe&)>* fn = nullptr;
    std::uint64_t request_id = 0;
    std::uint64_t publish_ns = 0;
    bool timed = false;
    {
      std::unique_lock lock(pool_mutex_);
      pool_cv_.wait(lock, [&] {
        return pool_stopping_ || pool_run_generation_ != seen_generation;
      });
      if (pool_stopping_) return;
      seen_generation = pool_run_generation_;
      fn = pool_fn_;
      request_id = pool_request_id_;
      publish_ns = pool_publish_ns_;
      timed = pool_timed_;
    }
    Pe& pe = *pes_[static_cast<std::size_t>(id)];
    std::uint64_t pickup_ns = 0;
    if (timed) {
      // publish -> pickup is the front half of the pool handoff; the
      // back half (finish -> run end, the straggler tail) is charged by
      // run() once every worker has reported in.
      pickup_ns = wait_now_ns();
      const std::uint64_t handoff =
          pickup_ns > publish_ns ? pickup_ns - publish_ns : 0;
      pe.stats_.wait.pool_wait_ns += handoff;
      flight_wait("wait.pool_ns", handoff, hpfsc::obs::pe_track(id));
    }
    std::exception_ptr error;
    try {
      // Adopt the caller's request id so every span and flight event
      // this PE emits during the run joins the request's trace.
      hpfsc::obs::RequestScope rscope(request_id);
      hpfsc::obs::Span span(obs_session_, "pe-run", "runtime",
                            hpfsc::obs::pe_track(id));
      (*fn)(pe);
    } catch (...) {
      error = std::current_exception();
      abort_all();
    }
    {
      std::lock_guard lock(pool_mutex_);
      if (timed) {
        const std::uint64_t finish_ns = wait_now_ns();
        pe.stats_.wait.active_ns += finish_ns - pickup_ns;
        pool_finish_ns_[static_cast<std::size_t>(id)] = finish_ns;
      }
      pool_errors_[static_cast<std::size_t>(id)] = std::move(error);
      if (--pool_remaining_ == 0) pool_done_cv_.notify_all();
    }
  }
}

void Machine::run(const std::function<void(Pe&)>& fn) {
  const int p = num_pes();
  aborted_.store(false);
  {
    // Reset barrier state left over from an aborted previous run.
    std::lock_guard lock(barrier_mutex_);
    barrier_waiting_ = 0;
    ++barrier_generation_;
  }
  // Drain any stale messages from an aborted previous run.
  for (Channel& ch : channels_) {
    std::lock_guard lock(ch.mutex);
    ch.queue.clear();
  }
  // Likewise any receives an aborted run posted but never completed.
  for (auto& pe : pes_) pe->pending_recvs_.clear();
  ensure_workers();
  std::vector<std::exception_ptr> errors;
  {
    std::unique_lock lock(pool_mutex_);
    pool_errors_.assign(static_cast<std::size_t>(p), nullptr);
    pool_fn_ = &fn;
    pool_request_id_ = hpfsc::obs::current_request_id();
    pool_remaining_ = p;
    const bool timed = wait_timing();
    pool_timed_ = timed;
    if (timed) {
      pool_finish_ns_.assign(static_cast<std::size_t>(p), 0);
      pool_publish_ns_ = wait_now_ns();
    }
    ++pool_run_generation_;
    pool_cv_.notify_all();
    pool_done_cv_.wait(lock, [&] { return pool_remaining_ == 0; });
    pool_fn_ = nullptr;
    errors = std::move(pool_errors_);
    if (timed) {
      // Straggler tail: a PE that finished early waited (implicitly,
      // parked) for the slowest PE.  Charging run_end - finish makes
      // pool_wait + active identical across PEs — the imbalance term
      // of the reconciliation.  Safe to write PE stats here: all
      // workers are parked (pool_remaining_ == 0 under pool_mutex_).
      const std::uint64_t run_end = wait_now_ns();
      for (int id = 0; id < p; ++id) {
        const std::uint64_t finish =
            pool_finish_ns_[static_cast<std::size_t>(id)];
        if (finish != 0 && run_end > finish) {
          pes_[static_cast<std::size_t>(id)]->stats_.wait.pool_wait_ns +=
              run_end - finish;
        }
      }
    }
  }
  // Prefer a real failure over the secondary Aborted unwinds.
  std::exception_ptr first;
  for (const std::exception_ptr& e : errors) {
    if (!e) continue;
    try {
      std::rethrow_exception(e);
    } catch (const Aborted&) {
      if (!first) first = e;
    } catch (...) {
      std::rethrow_exception(e);
    }
  }
  if (first) std::rethrow_exception(first);
}

int Machine::create_array(const DistArrayDesc& desc) {
  // Find the first slot free on PE 0 (slots are SPMD-synchronized).
  int id = 0;
  while (pes_[0]->has_array(id)) ++id;
  create_array_at(id, desc);
  return id;
}

void Machine::create_array_at(int id, const DistArrayDesc& desc) {
  for (auto& pe : pes_) pe->create_array(id, desc);
}

void Machine::free_array(int id) {
  for (auto& pe : pes_) pe->free_array(id);
}

std::vector<double> Machine::gather(int id) {
  const DistArrayDesc& desc = pes_[0]->grid(id).desc();
  std::vector<double> global(desc.global_elements(), 0.0);
  // Column-major global linearization.
  const std::size_t s0 = 1;
  const auto s1 = static_cast<std::size_t>(desc.extent[0]);
  const std::size_t s2 = s1 * static_cast<std::size_t>(desc.extent[1]);
  for (auto& pe : pes_) {
    LocalGrid& g = pe->grid(id);
    if (!g.owns_anything()) continue;
    for (int k = g.own_lo(2); k <= g.own_hi(2); ++k) {
      for (int j = g.own_lo(1); j <= g.own_hi(1); ++j) {
        for (int i = g.own_lo(0); i <= g.own_hi(0); ++i) {
          global[static_cast<std::size_t>(i - 1) * s0 +
                 static_cast<std::size_t>(j - 1) * s1 +
                 static_cast<std::size_t>(k - 1) * s2] = g.at({i, j, k});
        }
      }
    }
  }
  return global;
}

void Machine::scatter(int id, std::span<const double> global) {
  const DistArrayDesc& desc = pes_[0]->grid(id).desc();
  const auto s1 = static_cast<std::size_t>(desc.extent[0]);
  const std::size_t s2 = s1 * static_cast<std::size_t>(desc.extent[1]);
  for (auto& pe : pes_) {
    LocalGrid& g = pe->grid(id);
    if (!g.owns_anything()) continue;
    for (int k = g.own_lo(2); k <= g.own_hi(2); ++k) {
      for (int j = g.own_lo(1); j <= g.own_hi(1); ++j) {
        for (int i = g.own_lo(0); i <= g.own_hi(0); ++i) {
          g.at({i, j, k}) = global[static_cast<std::size_t>(i - 1) +
                                   static_cast<std::size_t>(j - 1) * s1 +
                                   static_cast<std::size_t>(k - 1) * s2];
        }
      }
    }
  }
}

void Machine::set_elements(int id,
                           const std::function<double(int, int, int)>& f) {
  for (auto& pe : pes_) {
    LocalGrid& g = pe->grid(id);
    if (!g.owns_anything()) continue;
    for (int k = g.own_lo(2); k <= g.own_hi(2); ++k) {
      for (int j = g.own_lo(1); j <= g.own_hi(1); ++j) {
        for (int i = g.own_lo(0); i <= g.own_hi(0); ++i) {
          g.at({i, j, k}) = f(i, j, k);
        }
      }
    }
  }
}

MachineStats Machine::stats() const {
  MachineStats total;
  for (const auto& pe : pes_) {
    PeStats s = pe->stats_;
    // The arena tracks the true high-water mark even when no explicit
    // allocation happened since the last clear_stats().
    s.peak_heap_bytes = std::max(s.peak_heap_bytes, pe->arena_.peak());
    total.accumulate(s);
  }
  return total;
}

std::vector<PeStats> Machine::per_pe_stats() const {
  std::vector<PeStats> out;
  out.reserve(pes_.size());
  for (const auto& pe : pes_) {
    PeStats s = pe->stats_;
    s.peak_heap_bytes = std::max(s.peak_heap_bytes, pe->arena_.peak());
    out.push_back(s);
  }
  return out;
}

void Machine::clear_stats() {
  for (auto& pe : pes_) {
    pe->stats_.clear();
    pe->arena_.reset_peak();
  }
}

CommLedger Machine::comm_ledger() const {
  CommLedger total;
  for (const auto& pe : pes_) total += pe->stats_.comm;
  return total;
}

void Machine::set_obs_session(hpfsc::obs::TraceSession* session) {
  obs_session_ = session;
  if (!session || !session->enabled()) return;
  session->set_track_name(hpfsc::obs::kHostTrack, "host");
  for (int id = 0; id < num_pes(); ++id) {
    session->set_track_name(hpfsc::obs::pe_track(id),
                            "PE" + std::to_string(id));
  }
}

void Machine::record_transfer(TransferEvent event) {
  std::lock_guard lock(trace_mutex_);
  trace_.push_back(std::move(event));
}

std::vector<TransferEvent> Machine::take_trace() {
  std::lock_guard lock(trace_mutex_);
  std::vector<TransferEvent> out = std::move(trace_);
  trace_.clear();
  return out;
}

void Machine::abort_all() {
  aborted_.store(true);
  barrier_cv_.notify_all();
  for (Channel& ch : channels_) ch.cv.notify_all();
}

std::uint64_t Machine::barrier_wait() {
  std::unique_lock lock(barrier_mutex_);
  if (aborted_.load()) throw Aborted();
  const std::uint64_t my_generation = barrier_generation_;
  if (++barrier_waiting_ == num_pes()) {
    barrier_waiting_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return 0;  // last arriver: released the barrier, never blocked
  }
  // Per-run latch, like Pe::recv: the whole run is timed or none of it.
  const bool timed = pool_timed_;
  const std::uint64_t t0 = timed ? wait_now_ns() : 0;
  barrier_cv_.wait(lock, [&] {
    return barrier_generation_ != my_generation || aborted_.load();
  });
  if (barrier_generation_ == my_generation && aborted_.load()) {
    throw Aborted();
  }
  return timed ? wait_now_ns() - t0 : 0;
}

}  // namespace simpi

// Per-PE plan-step span: an obs::Span on the PE's timeline track that,
// on close, attributes the statistics delta the step caused — messages,
// bytes, intraprocessor copy bytes, kernel reference bytes, and the
// modeled communication/copy nanoseconds.  Used by the shift runtime
// (OVERLAP_SHIFT / CSHIFT) and the executor (COPY_OFFSET, KERNEL).
// Inert (no allocation) when the machine has no enabled obs session.
#pragma once

#include <string>
#include <string_view>

#include "obs/obs.hpp"
#include "simpi/machine.hpp"

namespace simpi {

class StepSpan {
 public:
  /// `what` is the step kind ("OVERLAP_SHIFT", "KERNEL", ...); `array`
  /// the operand array name, folded into the span name "what(array)".
  StepSpan(Pe& pe, const char* what, std::string_view array)
      : span_(pe.machine().obs_session(), what, "runtime",
              hpfsc::obs::pe_track(pe.id())),
        pe_(pe) {
    if (!span_.active()) return;
    span_.rename(std::string(what) + "(" + std::string(array) + ")");
    before_ = pe.stats();
  }

  ~StepSpan() {
    if (!span_.active()) return;
    const PeStats d = pe_.stats().delta_since(before_);
    span_.arg("messages", d.messages_sent);
    span_.arg("bytes_sent", d.bytes_sent);
    span_.arg("intra_copy_bytes", d.intra_copy_bytes);
    span_.arg("kernel_ref_bytes", d.kernel_ref_bytes);
    span_.arg("modeled_comm_ns", d.modeled_comm_ns);
    span_.arg("modeled_copy_ns", d.modeled_copy_ns);
  }

  StepSpan(const StepSpan&) = delete;
  StepSpan& operator=(const StepSpan&) = delete;

  [[nodiscard]] bool active() const { return span_.active(); }
  void arg(const char* key, double v) { span_.arg(key, v); }
  void arg(const char* key, int v) { span_.arg(key, v); }
  void arg_str(const char* key, std::string_view v) { span_.arg_str(key, v); }

 private:
  hpfsc::obs::Span span_;
  Pe& pe_;
  PeStats before_;
};

}  // namespace simpi

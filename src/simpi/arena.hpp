// Per-PE memory arena: tracks the bytes a PE has allocated for array
// subgrids against an optional cap, with a high-water mark.  The cap lets
// the benchmarks reproduce the paper's Fig. 11, where a 9-point stencil
// compiled with one temporary per CSHIFT exhausts per-PE memory.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace simpi {

/// Thrown when an allocation would exceed the PE's heap cap.
class OutOfMemory : public std::runtime_error {
 public:
  OutOfMemory(int pe, std::size_t requested, std::size_t in_use,
              std::size_t cap);

  int pe() const { return pe_; }
  std::size_t requested() const { return requested_; }
  std::size_t cap() const { return cap_; }

 private:
  int pe_;
  std::size_t requested_;
  std::size_t cap_;
};

/// Byte-accounting arena.  It does not own storage itself (subgrids use
/// ordinary std::vector); it enforces the cap and records usage.  Not
/// thread-safe: each PE has its own arena and only touches its own.
class MemoryArena {
 public:
  MemoryArena() = default;
  MemoryArena(int pe, std::size_t cap_bytes) : pe_(pe), cap_(cap_bytes) {}

  /// Registers an allocation of `bytes`; throws OutOfMemory on overflow.
  void charge(std::size_t bytes);

  /// Releases a previous charge.
  void release(std::size_t bytes) noexcept;

  [[nodiscard]] std::size_t in_use() const { return in_use_; }
  [[nodiscard]] std::size_t peak() const { return peak_; }
  [[nodiscard]] std::size_t cap() const { return cap_; }

  void reset_peak() { peak_ = in_use_; }

 private:
  int pe_ = 0;
  std::size_t cap_ = 0;  // 0 = unlimited
  std::size_t in_use_ = 0;
  std::size_t peak_ = 0;
};

/// RAII charge on an arena; releases on destruction.  Move-only.
class ArenaCharge {
 public:
  ArenaCharge() = default;
  ArenaCharge(MemoryArena& arena, std::size_t bytes)
      : arena_(&arena), bytes_(bytes) {
    arena.charge(bytes);
  }
  ArenaCharge(ArenaCharge&& o) noexcept
      : arena_(o.arena_), bytes_(o.bytes_) {
    o.arena_ = nullptr;
    o.bytes_ = 0;
  }
  ArenaCharge& operator=(ArenaCharge&& o) noexcept {
    if (this != &o) {
      release();
      arena_ = o.arena_;
      bytes_ = o.bytes_;
      o.arena_ = nullptr;
      o.bytes_ = 0;
    }
    return *this;
  }
  ArenaCharge(const ArenaCharge&) = delete;
  ArenaCharge& operator=(const ArenaCharge&) = delete;
  ~ArenaCharge() { release(); }

  [[nodiscard]] std::size_t bytes() const { return bytes_; }

 private:
  void release() noexcept {
    if (arena_ != nullptr) arena_->release(bytes_);
    arena_ = nullptr;
  }

  MemoryArena* arena_ = nullptr;
  std::size_t bytes_ = 0;
};

}  // namespace simpi

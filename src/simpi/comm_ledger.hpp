// Per-direction communication ledger: attributes every interprocessor
// transfer to (array dimension, shift direction, kind).  This is the
// instrument for the paper's central communication claim (§3.3): after
// communication unioning, a stencil statement needs at most **one
// message per direction per dimension**, with corner data carried
// inside those messages via the RSD fourth argument rather than as
// extra corner messages.
//
// Kinds:
//   OverlapShift — a halo-fill message from the overlap-area runtime
//                  (what unioned, offset-array code executes)
//   FullShift    — a whole-subgrid CSHIFT/EOSHIFT message (what the
//                  original, temporary-materializing code executes)
//   CornerRsd    — the *byte surcharge* of the RSD extension on an
//                  overlap-shift message: the corner/edge data riding
//                  along.  Never carries a message count — that is the
//                  claim being measured.
//
// The ledger is embedded in PeStats (single-writer, PE-private) and
// aggregated into MachineStats, so it inherits the existing
// clear/accumulate/delta_since attribution windows used by spans and
// benchmarks.
//
// Strict invariant mode (Machine::set_comm_invariant or
// HPFSC_COMM_INVARIANT=1) arms a fail-fast check: within one executed
// statement context (the executor resets the window after every kernel
// loop nest), a PE sending a second message in the same (dimension,
// direction) throws CommInvariantViolation — the unioning guarantee,
// enforced at run time.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace simpi {

inline constexpr int kCommDims = 3;   ///< array dimensions (rank <= 3)
inline constexpr int kCommDirs = 2;   ///< 0 = negative shift, 1 = positive
inline constexpr int kCommKinds = 3;

enum class CommKind { OverlapShift = 0, FullShift = 1, CornerRsd = 2 };

[[nodiscard]] const char* to_string(CommKind kind);

/// Direction index for a shift amount (shift != 0).
[[nodiscard]] constexpr int comm_dir(int shift) { return shift > 0 ? 1 : 0; }

struct CommCell {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;

  CommCell& operator+=(const CommCell& o) {
    messages += o.messages;
    bytes += o.bytes;
    return *this;
  }
};

/// Thrown (in strict mode) by the PE that exceeds the one-message-per-
/// direction-per-dimension budget inside a single statement context.
class CommInvariantViolation : public std::logic_error {
 public:
  explicit CommInvariantViolation(const std::string& what)
      : std::logic_error(what) {}
};

struct CommLedger {
  CommCell cells[kCommDims][kCommDirs][kCommKinds];

  void record(int dim, int dir, CommKind kind, std::uint64_t messages,
              std::uint64_t bytes) {
    CommCell& c = cells[dim][dir][static_cast<int>(kind)];
    c.messages += messages;
    c.bytes += bytes;
  }

  [[nodiscard]] const CommCell& cell(int dim, int dir, CommKind kind) const {
    return cells[dim][dir][static_cast<int>(kind)];
  }

  /// Sum over kinds for one (dimension, direction).
  [[nodiscard]] CommCell dir_total(int dim, int dir) const;
  /// Sum over dimensions and directions for one kind.
  [[nodiscard]] CommCell kind_total(CommKind kind) const;
  /// Grand total.
  [[nodiscard]] CommCell total() const;

  [[nodiscard]] bool empty() const { return total().messages == 0 &&
                                            total().bytes == 0; }

  CommLedger& operator+=(const CommLedger& o);
  /// Cell-wise monotone-counter difference (`after - before`).
  [[nodiscard]] CommLedger delta_since(const CommLedger& before) const;

  void clear() { *this = CommLedger{}; }

  /// {"per_direction":[{"dim":1,"dir":"-","kind":"overlap_shift",
  ///   "messages":N,"bytes":N},...],"messages":N,"bytes":N}
  /// Only non-empty cells appear in the array; dims are 1-based to
  /// match the paper's notation.
  [[nodiscard]] std::string to_json() const;
};

}  // namespace simpi

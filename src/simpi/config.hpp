// Machine configuration and communication cost model for the simulated
// distributed-memory machine (the stand-in for the paper's 4-PE IBM SP-2).
#pragma once

#include <cstddef>
#include <cstdint>

namespace simpi {

/// Communication cost model, used two ways:
///  * every message's modeled cost (latency + size/bandwidth) is
///    accumulated into the per-PE statistics, and
///  * when `emulate` is true, the sending PE busy-waits for the modeled
///    duration so that *wall-clock* measurements also reflect SP-2-like
///    message costs (interconnects of that era were ~40us latency and
///    ~35 MB/s bandwidth; thread mailboxes are far faster).
struct CostModel {
  std::uint64_t latency_ns = 40'000;  ///< per-message start-up cost
  double ns_per_byte = 28.0;          ///< inverse bandwidth (~35 MB/s)
  /// Cost of intraprocessor (memory-to-memory) copying, modeling the
  /// era's memory bandwidth (~200 MB/s on a POWER2 gives ~10 ns/B for a
  /// read+write).  Modern memcpy is orders of magnitude faster, which
  /// would make the offset-array optimization look free; this restores
  /// the paper's compute/copy balance.  0 disables.
  double memory_ns_per_byte = 0.0;
  /// Cost of kernel array references (subgrid loop loads/stores, mostly
  /// cache-resident on the era's hardware).  This is what makes the
  /// paper's Section 3.4 memory optimizations (scalar replacement,
  /// unroll-and-jam) measurable: they reduce references per element.
  /// 0 disables.
  double cache_ns_per_byte = 0.0;
  bool emulate = false;               ///< busy-wait for the modeled cost

  [[nodiscard]] std::uint64_t message_cost_ns(std::size_t bytes) const {
    return latency_ns +
           static_cast<std::uint64_t>(ns_per_byte * static_cast<double>(bytes));
  }
  [[nodiscard]] std::uint64_t copy_cost_ns(std::size_t bytes) const {
    return static_cast<std::uint64_t>(memory_ns_per_byte *
                                      static_cast<double>(bytes));
  }
  [[nodiscard]] std::uint64_t kernel_ref_cost_ns(std::size_t bytes) const {
    return static_cast<std::uint64_t>(cache_ns_per_byte *
                                      static_cast<double>(bytes));
  }
};

/// Which communication backend the machine's shift runtime uses.
///  * Sync:  every posted receive completes inline (blocking until the
///    message arrives) — the original semantics.
///  * Async: receives posted by the shift runtime stay pending until
///    CommBackend::wait_all, letting the executor compute the interior
///    of a stencil while halo messages are in flight.
/// Both backends are bitwise-identical in results and produce the same
/// CommLedger message structure; only where blocking time lands moves
/// (recv_wait vs overlap_wait).
enum class CommBackendKind { Sync, Async };

/// Shape and limits of the simulated machine.
struct MachineConfig {
  int pe_rows = 2;  ///< processor grid rows (array dim 1 maps here)
  int pe_cols = 2;  ///< processor grid columns (array dim 2 maps here)

  /// Per-PE heap limit in bytes (0 = unlimited).  Reproduces the paper's
  /// Fig. 11, where 12 CSHIFT temporaries exhaust the SP-2's 256MB/PE.
  std::size_t per_pe_heap_bytes = 0;

  /// Default comm backend; HPFSC_COMM_BACKEND=sync|async overrides, and
  /// Machine::set_comm_backend overrides both.
  CommBackendKind comm_backend = CommBackendKind::Sync;

  CostModel cost;

  [[nodiscard]] int num_pes() const { return pe_rows * pe_cols; }
};

}  // namespace simpi

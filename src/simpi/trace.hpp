// Data-movement tracing and visualization: records every region
// transfer the shift runtime performs and renders the overlap-area
// state of a distributed array as ASCII diagrams — a textual
// reproduction of the paper's Figures 5 and 7-10.
#pragma once

#include <string>
#include <vector>

#include "simpi/dist_array.hpp"

namespace simpi {

class Machine;

/// One recorded region transfer.
struct TransferEvent {
  int from_pe = -1;     ///< sender (== to_pe for intraprocessor copies)
  int to_pe = -1;       ///< receiver
  Region region;        ///< destination region, in global indices
  bool intra = false;   ///< intraprocessor copy (vs. a message)
  bool boundary_fill = false;  ///< EOSHIFT boundary-value fill
  std::string array;    ///< array name

  /// "PE0 -> PE1: SRC[5:5, 1:4]" style rendering.
  [[nodiscard]] std::string str(int rank) const;
};

/// Renders per-PE diagrams of `array_id`'s stored region: owned cells
/// 'o', overlap cells holding the correct (circularly wrapped) global
/// value '#', stale overlap cells '.'.  `global` is the ground-truth
/// dense column-major array.  2-D arrays only (the paper's figures).
[[nodiscard]] std::string render_overlap_state(
    Machine& machine, int array_id, const std::vector<double>& global);

}  // namespace simpi

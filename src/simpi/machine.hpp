// The simulated distributed-memory machine.  PEs are threads; each PE
// owns a private arena, statistics block, and array registry (its local
// subgrids).  PEs communicate only through mailboxes (messages) and a
// machine-wide barrier, mirroring the SPMD + MPI execution model of the
// paper's target (a 4-processor IBM SP-2).
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "simpi/arena.hpp"
#include "simpi/comm_backend.hpp"
#include "simpi/config.hpp"
#include "simpi/dist_array.hpp"
#include "simpi/layout.hpp"
#include "simpi/stats.hpp"
#include "simpi/trace.hpp"

namespace simpi {

class Machine;

/// Which WaitStats bucket a blocking receive charges: Recv for inline
/// (synchronous) completion, Overlap for deferred completion at the
/// async backend's wait_all.  Only Recv waits are additionally
/// bucketed per (dim, dir).
enum class WaitBucket { Recv, Overlap };

/// Thrown inside PE threads when another PE has failed, to unwind all
/// threads cleanly instead of deadlocking at a barrier or recv.
class Aborted : public std::runtime_error {
 public:
  Aborted() : std::runtime_error("machine aborted") {}
};

/// One processing element.  Created by the Machine; user code receives a
/// reference inside Machine::run and uses it as the SPMD context.
class Pe {
 public:
  Pe(Machine& machine, int id, int row, int col, std::size_t heap_cap)
      : machine_(machine), id_(id), row_(row), col_(col),
        arena_(id, heap_cap) {}

  Pe(const Pe&) = delete;
  Pe& operator=(const Pe&) = delete;

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] int row() const { return row_; }
  [[nodiscard]] int col() const { return col_; }
  [[nodiscard]] Machine& machine() { return machine_; }
  [[nodiscard]] MemoryArena& arena() { return arena_; }
  [[nodiscard]] PeStats& stats() { return stats_; }

  /// -- Communication ------------------------------------------------
  /// Buffered point-to-point send; never blocks.  Charges the modeled
  /// message cost to this PE and, when cost emulation is on, busy-waits
  /// for that duration so wall-clock time reflects it.
  void send(int dst, std::span<const double> data);

  /// Blocking receive of the next message from `src` (FIFO per pair).
  /// Time spent blocked (the message had not arrived yet) is charged to
  /// WaitStats::recv_wait_ns; the (dim, dir) overload — used by the
  /// shift runtime — additionally buckets it per (dimension, direction)
  /// like the CommLedger buckets traffic.  The fast path (message
  /// already queued) reads no clock.  The WaitBucket overload lets the
  /// async comm backend's wait_all charge the overlap bucket instead.
  std::vector<double> recv(int src) { return recv(src, -1, 0); }
  std::vector<double> recv(int src, int dim, int dir) {
    return recv(src, dim, dir, WaitBucket::Recv);
  }
  std::vector<double> recv(int src, int dim, int dir, WaitBucket bucket);

  /// Receives posted by the comm backend but not yet completed.
  /// PE-thread-private: only this PE's thread posts and drains during a
  /// run; Machine::run clears leftovers from an aborted previous run.
  [[nodiscard]] std::vector<PendingRecv>& pending_recvs() {
    return pending_recvs_;
  }

  /// Accounts for `bytes` of intraprocessor data movement (the copies
  /// the offset-array optimization eliminates).  Charges the modeled
  /// memory cost and, under cost emulation, busy-waits for it.
  void charge_intra_copy(std::size_t bytes);

  /// Accounts for `bytes` of subgrid-loop array references (the traffic
  /// scalar replacement and unroll-and-jam reduce).
  void charge_kernel_refs(std::size_t bytes);

  /// -- Communication-invariant window --------------------------------
  /// Notes one *communicating shift operation* of `array_id` in
  /// (dim, dir) against the current statement context (the runtime calls
  /// this once per shift op that sent at least one message; wrap-around
  /// splits within one op count once).  In strict mode
  /// (Machine::set_comm_invariant / HPFSC_COMM_INVARIANT=1) a second
  /// communicating shift of the same array in the same (dim, dir) within
  /// one context throws CommInvariantViolation — the §3.3 unioning
  /// guarantee (one message per direction per dimension per array),
  /// enforced at run time.  `kind` and `array_name` label the offending
  /// transfer in the error message.
  void note_context_transfer(int array_id, const char* array_name, int dim,
                             int dir, const char* kind);
  /// Marks a statement-context boundary (the executor calls this after
  /// every kernel loop nest and at run start).
  void reset_comm_context();

  /// Machine-wide barrier (all PEs participating in the current run).
  void barrier();

  /// -- Local array registry ------------------------------------------
  /// Allocates this PE's subgrid of `desc` in slot `id` (SPMD: every PE
  /// must perform the same allocation).  Throws OutOfMemory if the
  /// arena cap would be exceeded.
  LocalGrid& create_array(int id, const DistArrayDesc& desc);
  void free_array(int id);
  [[nodiscard]] LocalGrid& grid(int id);
  [[nodiscard]] bool has_array(int id) const;

 private:
  friend class Machine;

  Machine& machine_;
  int id_;
  int row_;
  int col_;
  MemoryArena arena_;
  PeStats stats_;
  std::vector<std::unique_ptr<LocalGrid>> slots_;
  std::vector<PendingRecv> pending_recvs_;
  /// Communicating shift ops per (array, dim, dir) since the last
  /// context boundary (PE-private; only consulted when the invariant
  /// mode is armed).  Indexed by array slot id, grown on demand.
  std::vector<std::array<std::array<std::uint32_t, kCommDirs>, kCommDims>>
      context_transfers_;
};

/// The machine: a PE grid plus mailboxes and a barrier.  Thread-safe
/// only in the ways the SPMD model needs: PE-private state is touched
/// only by its own thread; mailboxes and the barrier are synchronized.
class Machine {
 public:
  explicit Machine(const MachineConfig& config);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] const MachineConfig& config() const { return config_; }
  [[nodiscard]] const ProcGrid& grid() const { return grid_; }
  [[nodiscard]] int num_pes() const { return grid_.size(); }
  [[nodiscard]] Pe& pe(int id) { return *pes_[static_cast<std::size_t>(id)]; }

  /// Runs `fn` on every PE concurrently (one worker thread per PE) and
  /// waits for all of them.  If any PE throws, all others are aborted
  /// and the first non-Aborted exception is rethrown on the caller's
  /// thread.  The workers are persistent: the first run() starts them
  /// and later runs just wake them, so a machine serving many small
  /// runs (the service layer's warm path, time-stepped kernels) pays no
  /// per-run thread spawn/join.
  void run(const std::function<void(Pe&)>& fn);

  /// -- Host-side (no PE threads active) conveniences for tests --------
  /// Allocates an array on all PEs; returns the slot id used.
  int create_array(const DistArrayDesc& desc);
  /// Allocates into a specific slot on all PEs.
  void create_array_at(int id, const DistArrayDesc& desc);
  void free_array(int id);

  /// Gathers the owned elements of array `id` into a dense column-major
  /// global vector.
  [[nodiscard]] std::vector<double> gather(int id);
  /// Scatters a dense global vector into the owned elements of `id`.
  void scatter(int id, std::span<const double> global);
  /// Initializes owned elements with f(i, j, k) (1-based global indices;
  /// unused trailing indices are 1).
  void set_elements(int id, const std::function<double(int, int, int)>& f);

  /// Sums the given statistic over PEs / takes maxima as appropriate.
  [[nodiscard]] MachineStats stats() const;
  /// Per-PE statistics snapshot, indexed by PE id.  Safe from the host
  /// thread between runs (the workers are parked).
  [[nodiscard]] std::vector<PeStats> per_pe_stats() const;
  void clear_stats();

  /// Wall-clock wait-state accounting (on by default).  Off, the
  /// blocking points read no clock and charge nothing — the A/B arm of
  /// the instrumentation-overhead bench.  Also settable via
  /// HPFSC_WAIT_TIMING (the value "0" disables).
  void set_wait_timing(bool on) {
    wait_timing_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool wait_timing() const {
    return wait_timing_.load(std::memory_order_relaxed);
  }

  /// Machine-wide communication ledger (summed over PEs); equivalent to
  /// stats().comm.
  [[nodiscard]] CommLedger comm_ledger() const;

  /// Strict per-direction communication invariant (see
  /// Pe::note_context_transfer).  Defaults to the HPFSC_COMM_INVARIANT
  /// environment variable (any value other than empty/"0" arms it).
  void set_comm_invariant(bool on) { comm_invariant_ = on; }
  [[nodiscard]] bool comm_invariant() const { return comm_invariant_; }

  /// -- Communication backend -----------------------------------------
  /// Selects how the shift runtime completes posted receives (see
  /// CommBackend).  Defaults to MachineConfig::comm_backend, overridden
  /// by HPFSC_COMM_BACKEND=sync|async (anything else throws at
  /// construction); call between runs only.
  void set_comm_backend(CommBackendKind kind) {
    if (!comm_backend_ || comm_backend_->kind() != kind) {
      comm_backend_ = make_comm_backend(kind);
    }
  }
  [[nodiscard]] CommBackend& comm_backend() { return *comm_backend_; }
  [[nodiscard]] CommBackendKind comm_backend_kind() const {
    return comm_backend_->kind();
  }

  /// True after a run aborted; cleared at the start of each run.
  [[nodiscard]] bool aborted() const { return aborted_; }

  /// -- Observability -------------------------------------------------
  /// Attaches a tracing session: Machine::run emits a per-PE "pe-run"
  /// span and the shift runtime emits one span per plan step (with
  /// message/byte/modeled-cost attribution).  Also names the timeline
  /// tracks on the session's sinks.  Pass nullptr to detach; the
  /// session must outlive the machine (or be detached first).
  void set_obs_session(hpfsc::obs::TraceSession* session);
  [[nodiscard]] hpfsc::obs::TraceSession* obs_session() const {
    return obs_session_;
  }

  /// -- Data-movement tracing (paper Figures 5, 7-10) ------------------
  /// When enabled, shift operations record every region transfer.
  void enable_tracing(bool on = true) { tracing_ = on; }
  [[nodiscard]] bool tracing() const { return tracing_; }
  void record_transfer(TransferEvent event);
  [[nodiscard]] std::vector<TransferEvent> take_trace();

 private:
  friend class Pe;

  struct Channel {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::vector<double>> queue;
  };

  [[nodiscard]] Channel& channel(int src, int dst) {
    return channels_[static_cast<std::size_t>(src * grid_.size() + dst)];
  }

  void abort_all();
  /// Returns nanoseconds the caller spent blocked (0 for the last
  /// arriver, and always 0 with wait timing off).
  std::uint64_t barrier_wait();

  void ensure_workers();
  void worker_loop(int id);

  MachineConfig config_;
  ProcGrid grid_;
  std::vector<std::unique_ptr<Pe>> pes_;
  std::vector<Channel> channels_;

  // Abortable barrier state.
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;
  std::atomic<bool> aborted_{false};

  hpfsc::obs::TraceSession* obs_session_ = nullptr;
  bool comm_invariant_ = false;
  std::unique_ptr<CommBackend> comm_backend_;

  // Persistent PE worker pool, started lazily by the first run().
  // Workers park on pool_cv_ between runs; run() publishes the next
  // generation's task and waits on pool_done_cv_ until every worker
  // has finished it.
  std::vector<std::jthread> workers_;
  std::mutex pool_mutex_;
  std::condition_variable pool_cv_;
  std::condition_variable pool_done_cv_;
  const std::function<void(Pe&)>* pool_fn_ = nullptr;
  /// Request id of the thread that called run(); each PE worker adopts
  /// it for the run so per-PE spans/flight events join the request's
  /// trace.  Written and read under pool_mutex_ with pool_fn_.
  std::uint64_t pool_request_id_ = 0;
  std::uint64_t pool_run_generation_ = 0;
  int pool_remaining_ = 0;
  bool pool_stopping_ = false;
  std::vector<std::exception_ptr> pool_errors_;
  /// Handoff timestamps for pool-wait attribution (steady-clock ns).
  /// publish is stamped by run() with the task; each worker stamps its
  /// finish time when it completes.  pool_timed_ is latched per run —
  /// every blocking point (recv, barrier, pool) consults the latch, not
  /// the live flag, so a mid-run set_wait_timing() toggle cannot split
  /// the accounting.  Written under pool_mutex_ before workers wake and
  /// stable until they all park again, so PE threads may read it plainly
  /// during a run.
  std::uint64_t pool_publish_ns_ = 0;
  bool pool_timed_ = false;
  std::vector<std::uint64_t> pool_finish_ns_;
  std::atomic<bool> wait_timing_{true};

  // Tracing state (mutex-protected; PEs append concurrently).
  bool tracing_ = false;
  std::mutex trace_mutex_;
  std::vector<TransferEvent> trace_;
};

}  // namespace simpi

#include "simpi/dist_array.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace simpi {

std::array<int, kMaxRank> DistArrayDesc::grid_mapping(
    const ProcGrid& grid) const {
  std::array<int, kMaxRank> mapping{-1, -1, -1};
  int next_grid_dim = 0;
  for (int d = 0; d < rank; ++d) {
    if (dist[d] == DistKind::Block) {
      if (next_grid_dim >= 2) {
        throw std::invalid_argument(
            "array '" + name + "': more than 2 BLOCK dimensions");
      }
      mapping[d] = next_grid_dim++;
    }
  }
  for (int g = next_grid_dim; g < 2; ++g) {
    if (grid.dim(g) != 1) {
      throw std::invalid_argument(
          "array '" + name + "': distribution uses " +
          std::to_string(next_grid_dim) + " grid dimension(s) but grid " +
          "dimension " + std::to_string(g) + " has extent " +
          std::to_string(grid.dim(g)));
    }
  }
  return mapping;
}

LocalGrid::LocalGrid(const DistArrayDesc& desc, const ProcGrid& grid, int pe,
                     MemoryArena& arena)
    : desc_(desc) {
  const std::array<int, kMaxRank> mapping = desc.grid_mapping(grid);
  const std::array<int, 2> coords = grid.coords_of(pe);

  bool empty = false;
  std::size_t total = 1;
  for (int d = 0; d < desc_.rank; ++d) {
    if (mapping[d] >= 0) {
      BlockMap bm(desc_.extent[d], grid.dim(mapping[d]));
      own_lo_[d] = bm.lo(coords[static_cast<std::size_t>(mapping[d])]);
      own_hi_[d] = bm.hi(coords[static_cast<std::size_t>(mapping[d])]);
    } else {
      own_lo_[d] = 1;
      own_hi_[d] = desc_.extent[d];
    }
    int own = own_hi_[d] - own_lo_[d] + 1;
    if (own <= 0) {
      empty = true;
      break;
    }
    lsize_[d] = own + desc_.halo.lo[d] + desc_.halo.hi[d];
    total *= static_cast<std::size_t>(lsize_[d]);
  }
  for (int d = desc_.rank; d < kMaxRank; ++d) {
    own_lo_[d] = 1;
    own_hi_[d] = 1;
    lsize_[d] = 1;
  }

  if (!empty) {
    stride_[0] = 1;
    for (int d = 1; d < kMaxRank; ++d) {
      stride_[d] = stride_[d - 1] * lsize_[d - 1];
    }
    charge_ = ArenaCharge(arena, total * sizeof(double));
    data_.assign(total, 0.0);
  } else {
    // This PE owns nothing; mark the ownership range empty in dim 0.
    own_hi_[0] = own_lo_[0] - 1;
  }
}

Region LocalGrid::owned_region() const {
  Region r;
  for (int d = 0; d < desc_.rank; ++d) {
    r.lo[d] = own_lo_[d];
    r.hi[d] = own_hi_[d];
  }
  return r;
}

Region LocalGrid::stored_region() const {
  Region r;
  for (int d = 0; d < desc_.rank; ++d) {
    r.lo[d] = own_lo_[d] - desc_.halo.lo[d];
    r.hi[d] = own_hi_[d] + desc_.halo.hi[d];
  }
  return r;
}

std::size_t LocalGrid::linear_index(std::array<int, kMaxRank> g) const {
  std::size_t idx = 0;
  for (int d = 0; d < desc_.rank; ++d) {
    int local = g[d] - own_lo_[d] + desc_.halo.lo[d];
    assert(local >= 0 && local < lsize_[d] && "index outside stored region");
    idx += static_cast<std::size_t>(local) *
           static_cast<std::size_t>(stride_[d]);
  }
  return idx;
}

void LocalGrid::pack(const Region& region, std::span<double> out) const {
  assert(out.size() >= region.elements(desc_.rank));
  const int run = region.hi[0] - region.lo[0] + 1;
  if (run <= 0) return;
  std::size_t pos = 0;
  for (int k = region.lo[2]; k <= (desc_.rank > 2 ? region.hi[2] : region.lo[2]);
       ++k) {
    for (int j = region.lo[1];
         j <= (desc_.rank > 1 ? region.hi[1] : region.lo[1]); ++j) {
      const double* src = data_.data() + linear_index({region.lo[0], j, k});
      std::memcpy(out.data() + pos, src,
                  static_cast<std::size_t>(run) * sizeof(double));
      pos += static_cast<std::size_t>(run);
    }
  }
}

void LocalGrid::unpack(const Region& region, std::span<const double> in) {
  assert(in.size() >= region.elements(desc_.rank));
  const int run = region.hi[0] - region.lo[0] + 1;
  if (run <= 0) return;
  std::size_t pos = 0;
  for (int k = region.lo[2]; k <= (desc_.rank > 2 ? region.hi[2] : region.lo[2]);
       ++k) {
    for (int j = region.lo[1];
         j <= (desc_.rank > 1 ? region.hi[1] : region.lo[1]); ++j) {
      double* dst = data_.data() + linear_index({region.lo[0], j, k});
      std::memcpy(dst, in.data() + pos,
                  static_cast<std::size_t>(run) * sizeof(double));
      pos += static_cast<std::size_t>(run);
    }
  }
}

std::size_t LocalGrid::copy_shifted_from(const LocalGrid& src,
                                         const Region& region, int dim,
                                         int shift) {
  const int run = region.hi[0] - region.lo[0] + 1;
  if (run <= 0) return 0;
  std::size_t bytes = 0;
  for (int k = region.lo[2]; k <= (desc_.rank > 2 ? region.hi[2] : region.lo[2]);
       ++k) {
    for (int j = region.lo[1];
         j <= (desc_.rank > 1 ? region.hi[1] : region.lo[1]); ++j) {
      std::array<int, kMaxRank> dst_g{region.lo[0], j, k};
      std::array<int, kMaxRank> src_g = dst_g;
      src_g[dim] += shift;
      double* dst = data_.data() + linear_index(dst_g);
      const double* s = src.data_.data() + src.linear_index(src_g);
      std::memcpy(dst, s, static_cast<std::size_t>(run) * sizeof(double));
      bytes += static_cast<std::size_t>(run) * sizeof(double);
    }
  }
  return bytes;
}

std::size_t LocalGrid::copy_offset_from(const LocalGrid& src,
                                        const Region& region,
                                        std::array<int, kMaxRank> offset) {
  const int run = region.hi[0] - region.lo[0] + 1;
  if (run <= 0) return 0;
  std::size_t bytes = 0;
  for (int k = region.lo[2]; k <= (desc_.rank > 2 ? region.hi[2] : region.lo[2]);
       ++k) {
    for (int j = region.lo[1];
         j <= (desc_.rank > 1 ? region.hi[1] : region.lo[1]); ++j) {
      std::array<int, kMaxRank> dst_g{region.lo[0], j, k};
      std::array<int, kMaxRank> src_g{region.lo[0] + offset[0],
                                      j + offset[1], k + offset[2]};
      double* dst = data_.data() + linear_index(dst_g);
      const double* s = src.data_.data() + src.linear_index(src_g);
      std::memcpy(dst, s, static_cast<std::size_t>(run) * sizeof(double));
      bytes += static_cast<std::size_t>(run) * sizeof(double);
    }
  }
  return bytes;
}

void LocalGrid::fill(double v) {
  for (double& x : data_) x = v;
}

void LocalGrid::fill_region(const Region& region, double v) {
  const int run = region.hi[0] - region.lo[0] + 1;
  if (run <= 0) return;
  for (int k = region.lo[2]; k <= (desc_.rank > 2 ? region.hi[2] : region.lo[2]);
       ++k) {
    for (int j = region.lo[1];
         j <= (desc_.rank > 1 ? region.hi[1] : region.lo[1]); ++j) {
      double* dst = data_.data() + linear_index({region.lo[0], j, k});
      for (int i = 0; i < run; ++i) dst[i] = v;
    }
  }
}

}  // namespace simpi

#include "simpi/comm_backend.hpp"

#include <cassert>

#include "simpi/machine.hpp"

namespace simpi {

void CommBackend::post_send(Pe& pe, int dst, std::span<const double> data) {
  pe.send(dst, data);
}

void CommBackend::complete(Pe& pe, const PendingRecv& recv, bool to_overlap) {
  std::vector<double> buf =
      pe.recv(recv.src, recv.dim, recv.dir,
              to_overlap ? WaitBucket::Overlap : WaitBucket::Recv);
  LocalGrid& g = pe.grid(recv.array_id);
  assert(buf.size() == recv.region.elements(g.rank()));
  g.unpack(recv.region, buf);
  if (pe.machine().tracing()) {
    pe.machine().record_transfer(TransferEvent{recv.src, pe.id(), recv.region,
                                               false, false, g.desc().name});
  }
}

void SyncThreadBackend::post_recv(Pe& pe, const PendingRecv& recv) {
  complete(pe, recv, /*to_overlap=*/false);
}

void SyncThreadBackend::wait_all(Pe& pe) { (void)pe; }

void AsyncThreadBackend::post_recv(Pe& pe, const PendingRecv& recv) {
  pe.pending_recvs().push_back(recv);
}

void AsyncThreadBackend::wait_all(Pe& pe) {
  // Drain in posting order: per-pair channels are FIFO, so completing
  // in the order the sync backend would have completed keeps the
  // message-to-region matching identical.
  std::vector<PendingRecv>& pending = pe.pending_recvs();
  for (std::size_t i = 0; i < pending.size(); ++i) {
    complete(pe, pending[i], /*to_overlap=*/true);
  }
  pending.clear();
}

std::unique_ptr<CommBackend> make_comm_backend(CommBackendKind kind) {
  if (kind == CommBackendKind::Async) {
    return std::make_unique<AsyncThreadBackend>();
  }
  return std::make_unique<SyncThreadBackend>();
}

}  // namespace simpi

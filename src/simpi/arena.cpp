#include "simpi/arena.hpp"

#include <algorithm>

namespace simpi {

OutOfMemory::OutOfMemory(int pe, std::size_t requested, std::size_t in_use,
                         std::size_t cap)
    : std::runtime_error("PE " + std::to_string(pe) +
                         " out of memory: requested " +
                         std::to_string(requested) + " bytes with " +
                         std::to_string(in_use) + " in use (cap " +
                         std::to_string(cap) + ")"),
      pe_(pe),
      requested_(requested),
      cap_(cap) {}

void MemoryArena::charge(std::size_t bytes) {
  if (cap_ != 0 && in_use_ + bytes > cap_) {
    throw OutOfMemory(pe_, bytes, in_use_, cap_);
  }
  in_use_ += bytes;
  peak_ = std::max(peak_, in_use_);
}

void MemoryArena::release(std::size_t bytes) noexcept {
  in_use_ = bytes > in_use_ ? 0 : in_use_ - bytes;
}

}  // namespace simpi

#include "simpi/shift_ops.hpp"

#include <cassert>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "simpi/obs_span.hpp"

namespace simpi {

std::vector<ShiftInterval> split_shift_intervals(int rlo, int rhi, int delta,
                                                 int n, const BlockMap& bm,
                                                 bool circular) {
  std::vector<ShiftInterval> out;
  int g = rlo;
  while (g <= rhi) {
    const int raw = g + delta;
    if (!circular && (raw < 1 || raw > n)) {
      // A run of positions outside the array: EOSHIFT boundary fill.
      // For raw < 1 the run ends where raw reaches 1; for raw > n it
      // extends to the end (raw only grows with g).
      const int run_end = raw < 1 ? std::min(rhi, -delta) : rhi;
      out.push_back(ShiftInterval{g, run_end, 0, -1});
      g = run_end + 1;
      continue;
    }
    const int sg = circular ? wrap_index(raw, n) : raw;
    const int owner = bm.owner(sg);
    int run = rhi - g + 1;
    run = std::min(run, bm.hi(owner) - sg + 1);  // stop at block boundary
    run = std::min(run, n - sg + 1);             // stop at wrap point
    out.push_back(ShiftInterval{g, g + run - 1, sg, owner});
    g += run;
  }
  return out;
}

namespace {

/// Cross-section of a transfer in all dimensions except `dim`: the PE's
/// owned ranges, optionally extended into overlap areas per the RSD.
Region cross_section(const LocalGrid& g, int dim, const RsdExtension& ext) {
  Region r;  // unused dims default to [1,1]
  for (int d = 0; d < g.rank(); ++d) {
    if (d == dim) continue;
    r.lo[d] = g.own_lo(d) - ext.lo[d];
    r.hi[d] = g.own_hi(d) + ext.hi[d];
  }
  return r;
}

/// PE id of the processor at coordinate `q` of grid dimension `gdim`,
/// keeping this PE's coordinate in the other grid dimension.
int pe_at(const Pe& pe, const ProcGrid& grid, int gdim, int q) {
  int r = pe.row();
  int c = pe.col();
  (gdim == 0 ? r : c) = q;
  return grid.rank_of(r, c);
}

void check_halo_width(const DistArrayDesc& desc, int dim, int shift) {
  const int width = std::abs(shift);
  const int have = shift > 0 ? desc.halo.hi[dim] : desc.halo.lo[dim];
  if (have < width) {
    throw std::logic_error("array '" + desc.name + "': overlap area of " +
                           std::to_string(have) + " in dim " +
                           std::to_string(dim + 1) +
                           " is too narrow for shift " +
                           std::to_string(shift));
  }
}

}  // namespace

void overlap_shift(Pe& pe, int array_id, int shift, int dim,
                   const RsdExtension& ext, ShiftKind kind, double boundary) {
  if (shift == 0) return;
  LocalGrid& g = pe.grid(array_id);
  const DistArrayDesc& desc = g.desc();
  StepSpan span(pe, "OVERLAP_SHIFT", desc.name);
  if (span.active()) {
    span.arg("shift", shift);
    span.arg("dim", dim + 1);
  }
  check_halo_width(desc, dim, shift);
  for (int d = 0; d < desc.rank; ++d) {
    if (d == dim) continue;
    if (ext.lo[d] > desc.halo.lo[d] || ext.hi[d] > desc.halo.hi[d]) {
      throw std::logic_error("array '" + desc.name +
                             "': RSD extension exceeds overlap width");
    }
  }

  const ProcGrid& grid = pe.machine().grid();
  const auto mapping = desc.grid_mapping(grid);
  const int gdim = mapping[dim];
  const int nprocs = gdim >= 0 ? grid.dim(gdim) : 1;
  const int my_coord =
      gdim >= 0 ? (gdim == 0 ? pe.row() : pe.col()) : 0;
  const int n = desc.extent[dim];
  const BlockMap bm(n, nprocs);
  const bool circular = kind == ShiftKind::Circular;

  if (!g.owns_anything()) return;

  CommBackend& backend = pe.machine().comm_backend();
  // An RSD-extended cross-section packs overlap cells of the non-shift
  // dimensions — data an earlier shift of this statement delivered.
  // Under a deferring backend those receives may still be pending, so
  // complete them before packing (only the corner-carrying shifts pay
  // this staging point; extension-free shifts pack owned cells only).
  if (ext.any()) backend.wait_all(pe);

  const Region cross = cross_section(g, dim, ext);

  // Ledger attribution: the RSD extension widens the cross-section, so
  // the byte surcharge over the unextended cross-section is the corner
  // data riding along (kind corner_rsd — bytes, never messages).
  const std::size_t cross_elems = cross.elements(desc.rank);
  const std::size_t base_elems =
      cross_section(g, dim, RsdExtension{}).elements(desc.rank);
  const int dir = comm_dir(shift);

  // Overlap cells to fill: beyond own_hi for positive shifts (so that
  // U<+s> reads succeed), below own_lo for negative shifts.
  const int halo_lo = shift > 0 ? g.own_hi(dim) + 1 : g.own_lo(dim) + shift;
  const int halo_hi = shift > 0 ? g.own_hi(dim) + shift : g.own_lo(dim) - 1;

  // -- Send phase: serve every other coordinate's overlap needs. -------
  int sent = 0;
  for (int q = 0; q < nprocs; ++q) {
    if (q == my_coord) continue;
    if (bm.count(q) <= 0) continue;
    const int q_halo_lo = shift > 0 ? bm.hi(q) + 1 : bm.lo(q) + shift;
    const int q_halo_hi = shift > 0 ? bm.hi(q) + shift : bm.lo(q) - 1;
    for (const ShiftInterval& iv :
         split_shift_intervals(q_halo_lo, q_halo_hi, 0, n, bm, circular)) {
      if (iv.owner != my_coord) continue;
      Region send_region = cross;
      send_region.lo[dim] = iv.src_lo;
      send_region.hi[dim] = iv.src_lo + (iv.reader_hi - iv.reader_lo);
      std::vector<double> buf(send_region.elements(desc.rank));
      g.pack(send_region, buf);
      backend.post_send(pe, pe_at(pe, grid, gdim, q), buf);
      const std::size_t len =
          static_cast<std::size_t>(iv.reader_hi - iv.reader_lo + 1);
      const std::uint64_t corner_bytes =
          len * (cross_elems - base_elems) * sizeof(double);
      pe.stats().comm.record(dim, dir, CommKind::OverlapShift, 1,
                             buf.size() * sizeof(double) - corner_bytes);
      if (corner_bytes > 0) {
        pe.stats().comm.record(dim, dir, CommKind::CornerRsd, 0,
                               corner_bytes);
      }
      ++sent;
    }
  }
  // One *shift operation* per (array, dim, dir) per statement context is
  // what unioning guarantees; a circular wrap may split one op into
  // several wire messages, so the context charge is per op, not per send.
  if (sent > 0) {
    pe.note_context_transfer(array_id, desc.name.c_str(), dim, dir,
                             "OVERLAP_SHIFT");
  }

  // -- Receive phase: fill my own overlap cells.  Boundary fills and
  // intraprocessor copies execute inline (they touch only this PE's
  // data); remote intervals are *posted* to the backend, which either
  // completes them here (sync) or leaves them pending for the caller's
  // wait_all (async) — the window the executor computes the interior
  // in.  Every posted region is an overlap (halo) region, disjoint
  // from any owned cell a kernel writes, which is what makes deferral
  // bitwise-invisible.
  for (const ShiftInterval& iv :
       split_shift_intervals(halo_lo, halo_hi, 0, n, bm, circular)) {
    Region dst_region = cross;
    dst_region.lo[dim] = iv.reader_lo;
    dst_region.hi[dim] = iv.reader_hi;
    if (iv.owner != -1 && iv.owner != my_coord) {
      backend.post_recv(pe, PendingRecv{pe_at(pe, grid, gdim, iv.owner),
                                        array_id, dim, dir, dst_region});
      continue;  // the backend records the trace event on completion
    }
    int from = -1;
    if (iv.owner == -1) {
      g.fill_region(dst_region, boundary);
    } else {
      pe.charge_intra_copy(g.copy_shifted_from(
          g, dst_region, dim, iv.src_lo - iv.reader_lo));
      from = pe.id();
    }
    if (pe.machine().tracing()) {
      pe.machine().record_transfer(TransferEvent{
          from, pe.id(), dst_region, from == pe.id(), iv.owner == -1,
          desc.name});
    }
  }
}

void full_cshift(Pe& pe, int dst_id, int src_id, int shift, int dim,
                 ShiftKind kind, double boundary) {
  LocalGrid& dst = pe.grid(dst_id);
  LocalGrid& src = pe.grid(src_id);
  const DistArrayDesc& desc = src.desc();
  StepSpan span(pe, "FULL_SHIFT", dst.desc().name);
  if (span.active()) {
    span.arg("shift", shift);
    span.arg("dim", dim + 1);
  }
  if (dst.desc().rank != desc.rank || dst.desc().extent != desc.extent ||
      dst.desc().dist != desc.dist) {
    throw std::logic_error("full_cshift: '" + dst.desc().name + "' and '" +
                           desc.name + "' have mismatched shape/distribution");
  }

  const ProcGrid& grid = pe.machine().grid();
  const auto mapping = desc.grid_mapping(grid);
  const int gdim = mapping[dim];
  const int nprocs = gdim >= 0 ? grid.dim(gdim) : 1;
  const int my_coord = gdim >= 0 ? (gdim == 0 ? pe.row() : pe.col()) : 0;
  const int n = desc.extent[dim];
  const BlockMap bm(n, nprocs);
  const bool circular = kind == ShiftKind::Circular;

  if (!dst.owns_anything()) return;

  CommBackend& backend = pe.machine().comm_backend();
  const Region cross = cross_section(dst, dim, RsdExtension{});
  const int dir = comm_dir(shift);

  // -- Send phase ------------------------------------------------------
  int sent = 0;
  for (int q = 0; q < nprocs; ++q) {
    if (q == my_coord) continue;
    if (bm.count(q) <= 0) continue;
    for (const ShiftInterval& iv : split_shift_intervals(
             bm.lo(q), bm.hi(q), shift, n, bm, circular)) {
      if (iv.owner != my_coord) continue;
      Region send_region = cross;
      send_region.lo[dim] = iv.src_lo;
      send_region.hi[dim] = iv.src_lo + (iv.reader_hi - iv.reader_lo);
      std::vector<double> buf(send_region.elements(desc.rank));
      src.pack(send_region, buf);
      backend.post_send(pe, pe_at(pe, grid, gdim, q), buf);
      pe.stats().comm.record(dim, dir, CommKind::FullShift, 1,
                             buf.size() * sizeof(double));
      ++sent;
    }
  }
  if (sent > 0) {
    pe.note_context_transfer(src_id, desc.name.c_str(), dim, dir,
                             "FULL_SHIFT");
  }

  // -- Receive phase: produce my owned box of dst. ----------------------
  const auto intervals = split_shift_intervals(
      dst.own_lo(dim), dst.own_hi(dim), shift, n, bm, circular);

  // An in-place shift (dst is src) must read pre-shift values: writing
  // one interval would clobber cells a later interval (or the same
  // copy, element by element) still reads.  Snapshot every
  // locally-sourced interval before the first write.
  std::vector<std::vector<double>> local_srcs;
  if (dst_id == src_id) {
    for (const ShiftInterval& iv : intervals) {
      if (iv.owner != my_coord) continue;
      Region src_region = cross;
      src_region.lo[dim] = iv.src_lo;
      src_region.hi[dim] = iv.src_lo + (iv.reader_hi - iv.reader_lo);
      std::vector<double> buf(src_region.elements(desc.rank));
      src.pack(src_region, buf);
      local_srcs.push_back(std::move(buf));
    }
  }

  std::size_t next_local = 0;
  for (const ShiftInterval& iv : intervals) {
    Region dst_region = cross;
    dst_region.lo[dim] = iv.reader_lo;
    dst_region.hi[dim] = iv.reader_hi;
    if (iv.owner != -1 && iv.owner != my_coord) {
      backend.post_recv(pe, PendingRecv{pe_at(pe, grid, gdim, iv.owner),
                                        dst_id, dim, dir, dst_region});
      continue;
    }
    int from = -1;
    if (iv.owner == -1) {
      dst.fill_region(dst_region, boundary);
    } else {
      if (dst_id == src_id) {
        const std::vector<double>& buf = local_srcs[next_local++];
        dst.unpack(dst_region, buf);
        pe.charge_intra_copy(buf.size() * sizeof(double));
      } else {
        pe.charge_intra_copy(dst.copy_shifted_from(
            src, dst_region, dim, iv.src_lo - iv.reader_lo));
      }
      from = pe.id();
    }
    if (pe.machine().tracing()) {
      pe.machine().record_transfer(TransferEvent{
          from, pe.id(), dst_region, from == pe.id(), iv.owner == -1,
          dst.desc().name});
    }
  }
  // A full shift is synchronous: the statement it implements (dst = a
  // whole shifted array) needs every owned cell before the next op can
  // read dst.  Traffic still flows through the seam — only no deferral
  // window escapes this function.
  backend.wait_all(pe);
}

void copy_array(Pe& pe, int dst_id, int src_id) {
  LocalGrid& dst = pe.grid(dst_id);
  LocalGrid& src = pe.grid(src_id);
  StepSpan span(pe, "COPY_ARRAY", dst.desc().name);
  if (!dst.owns_anything()) return;
  pe.charge_intra_copy(dst.copy_shifted_from(src, dst.owned_region(), 0, 0));
}

}  // namespace simpi

#include "simpi/trace.hpp"

#include "simpi/machine.hpp"

namespace simpi {

std::string TransferEvent::str(int rank) const {
  std::string out;
  if (boundary_fill) {
    out = "PE" + std::to_string(to_pe) + " boundary-fill: ";
  } else if (intra) {
    out = "PE" + std::to_string(to_pe) + " local copy: ";
  } else {
    out = "PE" + std::to_string(from_pe) + " -> PE" +
          std::to_string(to_pe) + ": ";
  }
  out += array + "[";
  for (int d = 0; d < rank; ++d) {
    if (d != 0) out += ", ";
    out += std::to_string(region.lo[d]) + ":" + std::to_string(region.hi[d]);
  }
  out += "]";
  return out;
}

std::string render_overlap_state(Machine& machine, int array_id,
                                 const std::vector<double>& global) {
  std::string out;
  const DistArrayDesc& desc = machine.pe(0).grid(array_id).desc();
  const int n0 = desc.extent[0];
  const int n1 = desc.extent[1];
  for (int pe = 0; pe < machine.num_pes(); ++pe) {
    LocalGrid& g = machine.pe(pe).grid(array_id);
    if (!g.owns_anything()) continue;
    Region stored = g.stored_region();
    out += "PE" + std::to_string(pe) + " (owns [" +
           std::to_string(g.own_lo(0)) + ":" + std::to_string(g.own_hi(0)) +
           ", " + std::to_string(g.own_lo(1)) + ":" +
           std::to_string(g.own_hi(1)) + "])\n";
    // Rows = dim 0 (i), columns = dim 1 (j), matching the paper's
    // matrix orientation.
    for (int i = stored.lo[0]; i <= stored.hi[0]; ++i) {
      out += "  ";
      for (int j = stored.lo[1]; j <= stored.hi[1]; ++j) {
        const bool owned = i >= g.own_lo(0) && i <= g.own_hi(0) &&
                           j >= g.own_lo(1) && j <= g.own_hi(1);
        if (owned) {
          out += 'o';
          continue;
        }
        const double expected =
            global[static_cast<std::size_t>(wrap_index(i, n0) - 1) +
                   static_cast<std::size_t>(wrap_index(j, n1) - 1) *
                       static_cast<std::size_t>(n0)];
        out += g.at({i, j}) == expected ? '#' : '.';
      }
      out += '\n';
    }
  }
  return out;
}

}  // namespace simpi

// BLOCK-distributed arrays: the global descriptor and the per-PE local
// subgrid.  Each PE's subgrid is stored with surrounding "overlap areas"
// (ghost cells) of the width requested by the compiler; overlap areas
// receive the interprocessor portion of shift operations so that offset
// references like U<+1,0> can be satisfied locally (paper Section 3.1).
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "simpi/arena.hpp"
#include "simpi/layout.hpp"

namespace simpi {

/// Per-dimension halo (overlap area) widths.
struct HaloSpec {
  std::array<int, kMaxRank> lo{0, 0, 0};  ///< cells below own_lo
  std::array<int, kMaxRank> hi{0, 0, 0};  ///< cells above own_hi
};

/// Global description of a distributed array.  Shared by all PEs.
struct DistArrayDesc {
  std::string name;
  int rank = 2;
  std::array<int, kMaxRank> extent{1, 1, 1};  ///< global sizes, 1-based
  std::array<DistKind, kMaxRank> dist{DistKind::Block, DistKind::Block,
                                      DistKind::Collapsed};
  HaloSpec halo;

  /// Grid dimension each array dimension maps to (-1 for collapsed).
  /// BLOCK dims are assigned grid dims in declaration order; any unused
  /// grid dimension must have extent 1.  Throws std::invalid_argument on
  /// an incompatible mapping.
  [[nodiscard]] std::array<int, kMaxRank> grid_mapping(
      const ProcGrid& grid) const;

  [[nodiscard]] std::size_t global_elements() const {
    std::size_t n = 1;
    for (int d = 0; d < rank; ++d) n *= static_cast<std::size_t>(extent[d]);
    return n;
  }
};

/// An inclusive global-index box, used to describe transfer regions.
/// Bounds may extend past [1, extent] by at most the halo width, in which
/// case they denote overlap-area cells.
struct Region {
  std::array<int, kMaxRank> lo{1, 1, 1};
  std::array<int, kMaxRank> hi{1, 1, 1};

  [[nodiscard]] std::size_t elements(int rank) const {
    std::size_t n = 1;
    for (int d = 0; d < rank; ++d) {
      int c = hi[d] - lo[d] + 1;
      if (c <= 0) return 0;
      n *= static_cast<std::size_t>(c);
    }
    return n;
  }
  [[nodiscard]] bool empty(int rank) const { return elements(rank) == 0; }
};

/// One PE's piece of a distributed array: the owned subgrid plus overlap
/// areas, stored column-major (first dimension contiguous, matching
/// Fortran).  Storage bytes are charged to the PE's arena.
class LocalGrid {
 public:
  LocalGrid(const DistArrayDesc& desc, const ProcGrid& grid, int pe,
            MemoryArena& arena);

  [[nodiscard]] const DistArrayDesc& desc() const { return desc_; }
  [[nodiscard]] int rank() const { return desc_.rank; }

  /// Owned global range in dimension d (1-based inclusive; hi<lo if this
  /// PE owns nothing in that dimension).
  [[nodiscard]] int own_lo(int d) const { return own_lo_[d]; }
  [[nodiscard]] int own_hi(int d) const { return own_hi_[d]; }
  [[nodiscard]] int own_count(int d) const {
    int c = own_hi_[d] - own_lo_[d] + 1;
    return c > 0 ? c : 0;
  }
  [[nodiscard]] bool owns_anything() const { return !data_.empty(); }

  /// The box this PE owns, as a Region.
  [[nodiscard]] Region owned_region() const;

  /// The storage-backed box (owned box extended by halo widths).
  [[nodiscard]] Region stored_region() const;

  /// Number of addressable local elements (owned + overlap areas).
  [[nodiscard]] std::size_t local_elements() const { return data_.size(); }

  /// Element access by global index (must lie within stored_region()).
  [[nodiscard]] double& at(std::array<int, kMaxRank> g) {
    return data_[linear_index(g)];
  }
  [[nodiscard]] double at(std::array<int, kMaxRank> g) const {
    return data_[linear_index(g)];
  }

  /// Raw storage access for the kernel interpreter: base pointer is the
  /// address of global element (own_lo - halo_lo); strides are in
  /// elements, column-major (stride(0) == 1).
  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }
  [[nodiscard]] std::ptrdiff_t stride(int d) const { return stride_[d]; }

  /// Pointer to global element g (which must be within stored_region()).
  [[nodiscard]] double* ptr_to(std::array<int, kMaxRank> g) {
    return data_.data() + linear_index(g);
  }

  /// Copies `region` of this grid into a dense buffer (column-major over
  /// the region).  The region must lie within stored_region(); it may
  /// include overlap cells — this is how corner data already present in
  /// lower-dimension overlap areas is forwarded (paper Section 3.3).
  void pack(const Region& region, std::span<double> out) const;

  /// Scatters a dense buffer into `region` of this grid.
  void unpack(const Region& region, std::span<const double> in);

  /// Copies `region` from another grid of identical shape/distribution,
  /// applying a global offset of `shift` in dimension `dim` on the source
  /// side: this(g) = src(g + shift*e_dim).  Used for the intraprocessor
  /// component of a full CSHIFT.  Returns the number of bytes moved.
  std::size_t copy_shifted_from(const LocalGrid& src, const Region& region,
                                int dim, int shift);

  /// General multi-dimensional offset copy: this(g) = src(g + offset),
  /// where source positions may reach into src's overlap areas.  Used by
  /// compensation copies (offset-array pass).  Returns bytes moved.
  std::size_t copy_offset_from(const LocalGrid& src, const Region& region,
                               std::array<int, kMaxRank> offset);

  /// Sets every stored element (including overlap areas) to `v`.
  void fill(double v);

  /// Sets every element of `region` (within stored_region()) to `v`.
  void fill_region(const Region& region, double v);

  [[nodiscard]] std::size_t storage_bytes() const {
    return data_.size() * sizeof(double);
  }

 private:
  [[nodiscard]] std::size_t linear_index(std::array<int, kMaxRank> g) const;

  DistArrayDesc desc_;
  std::array<int, kMaxRank> own_lo_{1, 1, 1};
  std::array<int, kMaxRank> own_hi_{1, 1, 1};
  std::array<int, kMaxRank> lsize_{1, 1, 1};      ///< stored extent per dim
  std::array<std::ptrdiff_t, kMaxRank> stride_{1, 1, 1};
  std::vector<double> data_;
  ArenaCharge charge_;
};

}  // namespace simpi

#include "simpi/comm_ledger.hpp"

namespace simpi {

const char* to_string(CommKind kind) {
  switch (kind) {
    case CommKind::OverlapShift: return "overlap_shift";
    case CommKind::FullShift: return "full_shift";
    case CommKind::CornerRsd: return "corner_rsd";
  }
  return "?";
}

CommCell CommLedger::dir_total(int dim, int dir) const {
  CommCell out;
  for (int k = 0; k < kCommKinds; ++k) out += cells[dim][dir][k];
  return out;
}

CommCell CommLedger::kind_total(CommKind kind) const {
  CommCell out;
  for (int d = 0; d < kCommDims; ++d) {
    for (int s = 0; s < kCommDirs; ++s) {
      out += cells[d][s][static_cast<int>(kind)];
    }
  }
  return out;
}

CommCell CommLedger::total() const {
  CommCell out;
  for (int d = 0; d < kCommDims; ++d) {
    for (int s = 0; s < kCommDirs; ++s) {
      for (int k = 0; k < kCommKinds; ++k) out += cells[d][s][k];
    }
  }
  return out;
}

CommLedger& CommLedger::operator+=(const CommLedger& o) {
  for (int d = 0; d < kCommDims; ++d) {
    for (int s = 0; s < kCommDirs; ++s) {
      for (int k = 0; k < kCommKinds; ++k) cells[d][s][k] += o.cells[d][s][k];
    }
  }
  return *this;
}

CommLedger CommLedger::delta_since(const CommLedger& before) const {
  CommLedger out;
  for (int d = 0; d < kCommDims; ++d) {
    for (int s = 0; s < kCommDirs; ++s) {
      for (int k = 0; k < kCommKinds; ++k) {
        out.cells[d][s][k].messages =
            cells[d][s][k].messages - before.cells[d][s][k].messages;
        out.cells[d][s][k].bytes =
            cells[d][s][k].bytes - before.cells[d][s][k].bytes;
      }
    }
  }
  return out;
}

std::string CommLedger::to_json() const {
  std::string out = "{\"per_direction\":[";
  bool first = true;
  for (int d = 0; d < kCommDims; ++d) {
    for (int s = 0; s < kCommDirs; ++s) {
      for (int k = 0; k < kCommKinds; ++k) {
        const CommCell& c = cells[d][s][k];
        if (c.messages == 0 && c.bytes == 0) continue;
        if (!first) out += ",";
        first = false;
        out += "{\"dim\":" + std::to_string(d + 1);
        out += ",\"dir\":\"";
        out += (s == 1 ? '+' : '-');
        out += "\",\"kind\":\"";
        out += to_string(static_cast<CommKind>(k));
        out += "\",\"messages\":" + std::to_string(c.messages);
        out += ",\"bytes\":" + std::to_string(c.bytes) + "}";
      }
    }
  }
  const CommCell t = total();
  out += "],\"messages\":" + std::to_string(t.messages);
  out += ",\"bytes\":" + std::to_string(t.bytes) + "}";
  return out;
}

}  // namespace simpi

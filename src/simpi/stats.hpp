// Per-PE and machine-wide execution statistics.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "simpi/comm_ledger.hpp"

namespace simpi {

/// Wall-clock wait-state attribution of one PE: nanoseconds the PE's
/// thread spent *blocked* at each of the runtime's blocking points,
/// plus the active window it spent running the node program.  All
/// fields are measured on one steady clock, which is what makes the
/// per-run reconciliation invariant possible (see WaitProfile):
///
///   pool_wait + active == run_end - publish   (exact, by construction)
///   compute := active - recv_wait - barrier_wait
///   compute + recv_wait + barrier_wait + pool_wait + overhead == wall
///
/// recv_wait is additionally bucketed by (dimension, direction) when
/// the shift runtime is the caller, so the exposed-communication time
/// decomposes the same way the CommLedger decomposes traffic.
struct WaitStats {
  std::uint64_t recv_wait_ns = 0;     ///< blocked in channel cv.wait
  std::uint64_t barrier_wait_ns = 0;  ///< blocked in barrier_wait
  std::uint64_t pool_wait_ns = 0;     ///< handoff: publish->pickup plus
                                      ///  finish->run-end straggler time
  /// Blocked completing receives that were posted asynchronously (the
  /// async comm backend's wait_all) — the share of communication the
  /// interior/boundary overlap did *not* hide.  Always zero under the
  /// synchronous backend, where the same blocking lands in recv_wait_ns.
  std::uint64_t overlap_wait_ns = 0;
  std::uint64_t active_ns = 0;        ///< pickup->finish window
  /// Subset of recv_wait_ns attributed to a shift (dim, dir); raw
  /// Pe::recv calls have no direction and only count in the total.
  std::array<std::array<std::uint64_t, kCommDirs>, kCommDims>
      recv_dim_dir{};

  [[nodiscard]] bool empty() const {
    return recv_wait_ns == 0 && barrier_wait_ns == 0 && pool_wait_ns == 0 &&
           overlap_wait_ns == 0 && active_ns == 0;
  }

  WaitStats& operator+=(const WaitStats& o) {
    recv_wait_ns += o.recv_wait_ns;
    barrier_wait_ns += o.barrier_wait_ns;
    pool_wait_ns += o.pool_wait_ns;
    overlap_wait_ns += o.overlap_wait_ns;
    active_ns += o.active_ns;
    for (std::size_t d = 0; d < kCommDims; ++d) {
      for (std::size_t s = 0; s < kCommDirs; ++s) {
        recv_dim_dir[d][s] += o.recv_dim_dir[d][s];
      }
    }
    return *this;
  }

  [[nodiscard]] WaitStats delta_since(const WaitStats& before) const {
    WaitStats d;
    d.recv_wait_ns = recv_wait_ns - before.recv_wait_ns;
    d.barrier_wait_ns = barrier_wait_ns - before.barrier_wait_ns;
    d.pool_wait_ns = pool_wait_ns - before.pool_wait_ns;
    d.overlap_wait_ns = overlap_wait_ns - before.overlap_wait_ns;
    d.active_ns = active_ns - before.active_ns;
    for (std::size_t dim = 0; dim < kCommDims; ++dim) {
      for (std::size_t s = 0; s < kCommDirs; ++s) {
        d.recv_dim_dir[dim][s] =
            recv_dim_dir[dim][s] - before.recv_dim_dir[dim][s];
      }
    }
    return d;
  }

  [[nodiscard]] std::string to_json() const {
    std::string out =
        "{\"recv_wait_ns\":" + std::to_string(recv_wait_ns) +
        ",\"barrier_wait_ns\":" + std::to_string(barrier_wait_ns) +
        ",\"pool_wait_ns\":" + std::to_string(pool_wait_ns);
    // Emitted only when nonzero so schema_version-3 consumers (and the
    // sync-backend goldens) see an unchanged object.
    if (overlap_wait_ns != 0) {
      out += ",\"overlap_wait_ns\":" + std::to_string(overlap_wait_ns);
    }
    out += ",\"active_ns\":" + std::to_string(active_ns) +
        ",\"recv_by_dim\":[";
    for (std::size_t d = 0; d < kCommDims; ++d) {
      if (d) out += ',';
      out += '[' + std::to_string(recv_dim_dir[d][0]) + ',' +
             std::to_string(recv_dim_dir[d][1]) + ']';
    }
    out += "]}";
    return out;
  }
};

namespace detail {
/// Stats JSON schema version.  v1 was the flat counter object; v2 adds
/// the "schema_version" marker and, when any per-direction traffic was
/// recorded, a "comm" ledger object; v3 adds, when any wall-clock wait
/// time was recorded, a "wait" object (WaitStats).  All v1/v2 keys are
/// emitted unchanged, in the same order, so old consumers keep working.
inline constexpr int kStatsSchemaVersion = 3;

inline std::string stats_json(std::uint64_t messages_sent,
                              std::uint64_t bytes_sent,
                              std::uint64_t intra_copy_bytes,
                              std::uint64_t kernel_ref_bytes,
                              std::uint64_t modeled_comm_ns,
                              std::uint64_t modeled_copy_ns,
                              std::size_t peak_heap_bytes,
                              const CommLedger& comm,
                              const WaitStats& wait) {
  std::string out =
      "{\"messages_sent\":" + std::to_string(messages_sent) +
      ",\"bytes_sent\":" + std::to_string(bytes_sent) +
      ",\"intra_copy_bytes\":" + std::to_string(intra_copy_bytes) +
      ",\"kernel_ref_bytes\":" + std::to_string(kernel_ref_bytes) +
      ",\"modeled_comm_ns\":" + std::to_string(modeled_comm_ns) +
      ",\"modeled_copy_ns\":" + std::to_string(modeled_copy_ns) +
      ",\"peak_heap_bytes\":" + std::to_string(peak_heap_bytes) +
      ",\"schema_version\":" + std::to_string(kStatsSchemaVersion);
  if (!comm.empty()) out += ",\"comm\":" + comm.to_json();
  if (!wait.empty()) out += ",\"wait\":" + wait.to_json();
  out += "}";
  return out;
}
}  // namespace detail

/// Counters maintained by one processing element.  All data movement in
/// the runtime is attributed to exactly one of these counters, so the
/// benchmarks can report the quantities the paper's optimizations target:
/// interprocessor messages/bytes (communication unioning) and
/// intraprocessor copy bytes (offset arrays).
struct PeStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t intra_copy_bytes = 0;   ///< local shift/copy traffic
  std::uint64_t kernel_ref_bytes = 0;   ///< subgrid loop loads+stores
  std::uint64_t modeled_comm_ns = 0;    ///< sum of modeled message costs
  std::uint64_t modeled_copy_ns = 0;    ///< sum of modeled copy costs
  std::size_t peak_heap_bytes = 0;      ///< arena high-water mark
  /// Per-(dimension, direction, kind) attribution of the interprocessor
  /// traffic counted above.  comm.total().messages can be less than
  /// messages_sent: only the shift runtime attributes its sends (raw
  /// Pe::send calls have no direction).
  CommLedger comm;
  /// Wall-clock blocking-time attribution (v3; see WaitStats).
  WaitStats wait;

  void clear() { *this = PeStats{}; }

  /// Merges another sample from the *same* PE (e.g. accumulating over
  /// iterations/phases): counters sum, the heap high-water mark maxes.
  PeStats& operator+=(const PeStats& o) {
    messages_sent += o.messages_sent;
    bytes_sent += o.bytes_sent;
    intra_copy_bytes += o.intra_copy_bytes;
    kernel_ref_bytes += o.kernel_ref_bytes;
    modeled_comm_ns += o.modeled_comm_ns;
    modeled_copy_ns += o.modeled_copy_ns;
    peak_heap_bytes = std::max(peak_heap_bytes, o.peak_heap_bytes);
    comm += o.comm;
    wait += o.wait;
    return *this;
  }

  /// Pointwise difference of two samples of the same monotone counters
  /// (window attribution: `after - before`).  The heap field is the
  /// later high-water mark.
  [[nodiscard]] PeStats delta_since(const PeStats& before) const {
    PeStats d;
    d.messages_sent = messages_sent - before.messages_sent;
    d.bytes_sent = bytes_sent - before.bytes_sent;
    d.intra_copy_bytes = intra_copy_bytes - before.intra_copy_bytes;
    d.kernel_ref_bytes = kernel_ref_bytes - before.kernel_ref_bytes;
    d.modeled_comm_ns = modeled_comm_ns - before.modeled_comm_ns;
    d.modeled_copy_ns = modeled_copy_ns - before.modeled_copy_ns;
    d.peak_heap_bytes = peak_heap_bytes;
    d.comm = comm.delta_since(before.comm);
    d.wait = wait.delta_since(before.wait);
    return d;
  }

  [[nodiscard]] std::string to_json() const {
    return detail::stats_json(messages_sent, bytes_sent, intra_copy_bytes,
                              kernel_ref_bytes, modeled_comm_ns,
                              modeled_copy_ns, peak_heap_bytes, comm, wait);
  }
};

/// Aggregate over all PEs.  Messages/bytes are summed; the modeled
/// communication time takes the per-PE maximum as a critical-path
/// approximation (PEs communicate concurrently).
struct MachineStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t intra_copy_bytes = 0;
  std::uint64_t kernel_ref_bytes = 0;
  std::uint64_t modeled_comm_ns = 0;  ///< max over PEs
  std::uint64_t modeled_copy_ns = 0;  ///< max over PEs
  std::size_t peak_heap_bytes = 0;    ///< max over PEs
  CommLedger comm;                    ///< summed over PEs
  /// Wait-state attribution summed over PEs: total exposed blocking
  /// time across the machine (P x wall is the denominator that turns
  /// this into a fraction; see WaitProfile).
  WaitStats wait;

  void accumulate(const PeStats& pe) {
    messages_sent += pe.messages_sent;
    bytes_sent += pe.bytes_sent;
    intra_copy_bytes += pe.intra_copy_bytes;
    kernel_ref_bytes += pe.kernel_ref_bytes;
    modeled_comm_ns = std::max(modeled_comm_ns, pe.modeled_comm_ns);
    modeled_copy_ns = std::max(modeled_copy_ns, pe.modeled_copy_ns);
    peak_heap_bytes = std::max(peak_heap_bytes, pe.peak_heap_bytes);
    comm += pe.comm;
    wait += pe.wait;
  }

  /// Merges aggregates from consecutive (sequential) runs/phases:
  /// counters and critical-path times sum, the heap high-water maxes.
  MachineStats& operator+=(const MachineStats& o) {
    messages_sent += o.messages_sent;
    bytes_sent += o.bytes_sent;
    intra_copy_bytes += o.intra_copy_bytes;
    kernel_ref_bytes += o.kernel_ref_bytes;
    modeled_comm_ns += o.modeled_comm_ns;
    modeled_copy_ns += o.modeled_copy_ns;
    peak_heap_bytes = std::max(peak_heap_bytes, o.peak_heap_bytes);
    comm += o.comm;
    wait += o.wait;
    return *this;
  }

  [[nodiscard]] std::string to_json() const {
    return detail::stats_json(messages_sent, bytes_sent, intra_copy_bytes,
                              kernel_ref_bytes, modeled_comm_ns,
                              modeled_copy_ns, peak_heap_bytes, comm, wait);
  }
};

}  // namespace simpi

// Per-PE and machine-wide execution statistics.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>

#include "simpi/comm_ledger.hpp"

namespace simpi {

namespace detail {
/// Stats JSON schema version.  v1 was the flat counter object; v2 adds
/// the "schema_version" marker and, when any per-direction traffic was
/// recorded, a "comm" ledger object.  All v1 keys are emitted
/// unchanged, in the same order, so v1 consumers keep working.
inline constexpr int kStatsSchemaVersion = 2;

inline std::string stats_json(std::uint64_t messages_sent,
                              std::uint64_t bytes_sent,
                              std::uint64_t intra_copy_bytes,
                              std::uint64_t kernel_ref_bytes,
                              std::uint64_t modeled_comm_ns,
                              std::uint64_t modeled_copy_ns,
                              std::size_t peak_heap_bytes,
                              const CommLedger& comm) {
  std::string out =
      "{\"messages_sent\":" + std::to_string(messages_sent) +
      ",\"bytes_sent\":" + std::to_string(bytes_sent) +
      ",\"intra_copy_bytes\":" + std::to_string(intra_copy_bytes) +
      ",\"kernel_ref_bytes\":" + std::to_string(kernel_ref_bytes) +
      ",\"modeled_comm_ns\":" + std::to_string(modeled_comm_ns) +
      ",\"modeled_copy_ns\":" + std::to_string(modeled_copy_ns) +
      ",\"peak_heap_bytes\":" + std::to_string(peak_heap_bytes) +
      ",\"schema_version\":" + std::to_string(kStatsSchemaVersion);
  if (!comm.empty()) out += ",\"comm\":" + comm.to_json();
  out += "}";
  return out;
}
}  // namespace detail

/// Counters maintained by one processing element.  All data movement in
/// the runtime is attributed to exactly one of these counters, so the
/// benchmarks can report the quantities the paper's optimizations target:
/// interprocessor messages/bytes (communication unioning) and
/// intraprocessor copy bytes (offset arrays).
struct PeStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t intra_copy_bytes = 0;   ///< local shift/copy traffic
  std::uint64_t kernel_ref_bytes = 0;   ///< subgrid loop loads+stores
  std::uint64_t modeled_comm_ns = 0;    ///< sum of modeled message costs
  std::uint64_t modeled_copy_ns = 0;    ///< sum of modeled copy costs
  std::size_t peak_heap_bytes = 0;      ///< arena high-water mark
  /// Per-(dimension, direction, kind) attribution of the interprocessor
  /// traffic counted above.  comm.total().messages can be less than
  /// messages_sent: only the shift runtime attributes its sends (raw
  /// Pe::send calls have no direction).
  CommLedger comm;

  void clear() { *this = PeStats{}; }

  /// Merges another sample from the *same* PE (e.g. accumulating over
  /// iterations/phases): counters sum, the heap high-water mark maxes.
  PeStats& operator+=(const PeStats& o) {
    messages_sent += o.messages_sent;
    bytes_sent += o.bytes_sent;
    intra_copy_bytes += o.intra_copy_bytes;
    kernel_ref_bytes += o.kernel_ref_bytes;
    modeled_comm_ns += o.modeled_comm_ns;
    modeled_copy_ns += o.modeled_copy_ns;
    peak_heap_bytes = std::max(peak_heap_bytes, o.peak_heap_bytes);
    comm += o.comm;
    return *this;
  }

  /// Pointwise difference of two samples of the same monotone counters
  /// (window attribution: `after - before`).  The heap field is the
  /// later high-water mark.
  [[nodiscard]] PeStats delta_since(const PeStats& before) const {
    PeStats d;
    d.messages_sent = messages_sent - before.messages_sent;
    d.bytes_sent = bytes_sent - before.bytes_sent;
    d.intra_copy_bytes = intra_copy_bytes - before.intra_copy_bytes;
    d.kernel_ref_bytes = kernel_ref_bytes - before.kernel_ref_bytes;
    d.modeled_comm_ns = modeled_comm_ns - before.modeled_comm_ns;
    d.modeled_copy_ns = modeled_copy_ns - before.modeled_copy_ns;
    d.peak_heap_bytes = peak_heap_bytes;
    d.comm = comm.delta_since(before.comm);
    return d;
  }

  [[nodiscard]] std::string to_json() const {
    return detail::stats_json(messages_sent, bytes_sent, intra_copy_bytes,
                              kernel_ref_bytes, modeled_comm_ns,
                              modeled_copy_ns, peak_heap_bytes, comm);
  }
};

/// Aggregate over all PEs.  Messages/bytes are summed; the modeled
/// communication time takes the per-PE maximum as a critical-path
/// approximation (PEs communicate concurrently).
struct MachineStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t intra_copy_bytes = 0;
  std::uint64_t kernel_ref_bytes = 0;
  std::uint64_t modeled_comm_ns = 0;  ///< max over PEs
  std::uint64_t modeled_copy_ns = 0;  ///< max over PEs
  std::size_t peak_heap_bytes = 0;    ///< max over PEs
  CommLedger comm;                    ///< summed over PEs

  void accumulate(const PeStats& pe) {
    messages_sent += pe.messages_sent;
    bytes_sent += pe.bytes_sent;
    intra_copy_bytes += pe.intra_copy_bytes;
    kernel_ref_bytes += pe.kernel_ref_bytes;
    modeled_comm_ns = std::max(modeled_comm_ns, pe.modeled_comm_ns);
    modeled_copy_ns = std::max(modeled_copy_ns, pe.modeled_copy_ns);
    peak_heap_bytes = std::max(peak_heap_bytes, pe.peak_heap_bytes);
    comm += pe.comm;
  }

  /// Merges aggregates from consecutive (sequential) runs/phases:
  /// counters and critical-path times sum, the heap high-water maxes.
  MachineStats& operator+=(const MachineStats& o) {
    messages_sent += o.messages_sent;
    bytes_sent += o.bytes_sent;
    intra_copy_bytes += o.intra_copy_bytes;
    kernel_ref_bytes += o.kernel_ref_bytes;
    modeled_comm_ns += o.modeled_comm_ns;
    modeled_copy_ns += o.modeled_copy_ns;
    peak_heap_bytes = std::max(peak_heap_bytes, o.peak_heap_bytes);
    comm += o.comm;
    return *this;
  }

  [[nodiscard]] std::string to_json() const {
    return detail::stats_json(messages_sent, bytes_sent, intra_copy_bytes,
                              kernel_ref_bytes, modeled_comm_ns,
                              modeled_copy_ns, peak_heap_bytes, comm);
  }
};

}  // namespace simpi

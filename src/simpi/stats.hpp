// Per-PE and machine-wide execution statistics.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace simpi {

/// Counters maintained by one processing element.  All data movement in
/// the runtime is attributed to exactly one of these counters, so the
/// benchmarks can report the quantities the paper's optimizations target:
/// interprocessor messages/bytes (communication unioning) and
/// intraprocessor copy bytes (offset arrays).
struct PeStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t intra_copy_bytes = 0;   ///< local shift/copy traffic
  std::uint64_t kernel_ref_bytes = 0;   ///< subgrid loop loads+stores
  std::uint64_t modeled_comm_ns = 0;    ///< sum of modeled message costs
  std::uint64_t modeled_copy_ns = 0;    ///< sum of modeled copy costs
  std::size_t peak_heap_bytes = 0;      ///< arena high-water mark

  void clear() { *this = PeStats{}; }
};

/// Aggregate over all PEs.  Messages/bytes are summed; the modeled
/// communication time takes the per-PE maximum as a critical-path
/// approximation (PEs communicate concurrently).
struct MachineStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t intra_copy_bytes = 0;
  std::uint64_t kernel_ref_bytes = 0;
  std::uint64_t modeled_comm_ns = 0;  ///< max over PEs
  std::uint64_t modeled_copy_ns = 0;  ///< max over PEs
  std::size_t peak_heap_bytes = 0;    ///< max over PEs

  void accumulate(const PeStats& pe) {
    messages_sent += pe.messages_sent;
    bytes_sent += pe.bytes_sent;
    intra_copy_bytes += pe.intra_copy_bytes;
    kernel_ref_bytes += pe.kernel_ref_bytes;
    modeled_comm_ns = std::max(modeled_comm_ns, pe.modeled_comm_ns);
    modeled_copy_ns = std::max(modeled_copy_ns, pe.modeled_copy_ns);
    peak_heap_bytes = std::max(peak_heap_bytes, pe.peak_heap_bytes);
  }
};

}  // namespace simpi

// Data layout machinery: HPF BLOCK distribution arithmetic, the 2-D
// processor grid, and global<->local index mapping.  All global indices
// are 1-based (Fortran convention); processor coordinates are 0-based.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace simpi {

constexpr int kMaxRank = 3;

/// Wraps a 1-based global index into [1, n] (CSHIFT's circular rule).
[[nodiscard]] constexpr int wrap_index(int g, int n) {
  int m = (g - 1) % n;
  if (m < 0) m += n;
  return m + 1;
}

/// HPF BLOCK distribution of a 1-based extent `n` over `p` processors:
/// block size b = ceil(n/p); processor k owns [k*b+1, min((k+1)*b, n)].
/// Trailing processors may own an empty range when p*b overshoots n.
class BlockMap {
 public:
  BlockMap() = default;
  BlockMap(int extent, int nprocs);

  [[nodiscard]] int extent() const { return n_; }
  [[nodiscard]] int nprocs() const { return p_; }
  [[nodiscard]] int block_size() const { return b_; }

  /// First global index owned by processor k (may exceed hi(k) if empty).
  [[nodiscard]] int lo(int k) const { return k * b_ + 1; }
  /// Last global index owned by processor k.
  [[nodiscard]] int hi(int k) const {
    int h = (k + 1) * b_;
    return h < n_ ? h : n_;
  }
  /// Number of elements owned by processor k.
  [[nodiscard]] int count(int k) const {
    int c = hi(k) - lo(k) + 1;
    return c > 0 ? c : 0;
  }
  /// Owner of global index g (g must be in [1, n]).
  [[nodiscard]] int owner(int g) const { return (g - 1) / b_; }

  /// True when any processor owns an empty range (ragged tail).
  [[nodiscard]] bool has_empty_blocks() const { return count(p_ - 1) <= 0; }

 private:
  int n_ = 1;
  int p_ = 1;
  int b_ = 1;
};

/// The machine's processor arrangement: a fixed 2-D grid.  Grid dimension
/// 0 is "rows"; BLOCK-distributed array dimensions are mapped to grid
/// dimensions in declaration order.
class ProcGrid {
 public:
  ProcGrid() = default;
  ProcGrid(int rows, int cols) : dims_{rows, cols} {}

  [[nodiscard]] int rows() const { return dims_[0]; }
  [[nodiscard]] int cols() const { return dims_[1]; }
  [[nodiscard]] int size() const { return dims_[0] * dims_[1]; }
  [[nodiscard]] int dim(int d) const { return dims_[d]; }

  [[nodiscard]] int rank_of(int r, int c) const { return r * dims_[1] + c; }
  [[nodiscard]] std::array<int, 2> coords_of(int pe) const {
    return {pe / dims_[1], pe % dims_[1]};
  }

 private:
  std::array<int, 2> dims_{1, 1};
};

/// Per-dimension distribution kind of an array.
enum class DistKind : std::uint8_t {
  Block,      ///< HPF BLOCK over one grid dimension
  Collapsed,  ///< '*' — the whole extent lives on every owning PE
};

[[nodiscard]] std::string to_string(DistKind k);

}  // namespace simpi

#include "simpi/layout.hpp"

#include <stdexcept>

namespace simpi {

BlockMap::BlockMap(int extent, int nprocs) : n_(extent), p_(nprocs) {
  if (extent < 1) throw std::invalid_argument("BlockMap: extent must be >= 1");
  if (nprocs < 1) throw std::invalid_argument("BlockMap: nprocs must be >= 1");
  b_ = (n_ + p_ - 1) / p_;
}

std::string to_string(DistKind k) {
  switch (k) {
    case DistKind::Block:
      return "BLOCK";
    case DistKind::Collapsed:
      return "*";
  }
  return "?";
}

}  // namespace simpi

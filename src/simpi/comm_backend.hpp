// Pluggable communication backend for the shift runtime.  All channel
// traffic the shift operations generate flows through this interface:
// sends are posted (buffered channel sends never block, so posting is
// the send), receives are *posted* as PendingRecv descriptors and
// *completed* either inline (SyncThreadBackend — the original blocking
// semantics) or at CommBackend::wait_all (AsyncThreadBackend — the
// halo-exchange/compute overlap the executor exploits by running a
// stencil's interior while the posted messages are in flight).
//
// Invariants both backends preserve:
//  * Send order per (src, dst) channel is identical, and wait_all
//    completes receives in posting order, so the untagged FIFO message
//    matching — and therefore every unpacked value — is bitwise
//    identical across backends.
//  * The CommLedger is recorded at posting time on the send side, so
//    the per-(dim, dir, kind) message/byte structure is backend-
//    invariant; only where blocking time is charged moves
//    (WaitStats::recv_wait_ns for inline completion,
//    WaitStats::overlap_wait_ns for deferred completion).
#pragma once

#include <memory>
#include <span>

#include "simpi/config.hpp"
#include "simpi/dist_array.hpp"

namespace simpi {

class Pe;

/// One posted, not-yet-completed receive: the next message on the
/// (src -> this PE) channel will be unpacked into `region` of array
/// `array_id`.  (dim, dir) label the shift for wait-state attribution,
/// mirroring the CommLedger's buckets.
struct PendingRecv {
  int src = -1;
  int array_id = -1;
  int dim = 0;
  int dir = 0;
  Region region;
};

class CommBackend {
 public:
  virtual ~CommBackend() = default;

  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual CommBackendKind kind() const = 0;
  /// True when post_recv may defer completion to wait_all.  The
  /// executor only splits a nest into interior + boundary (and lets
  /// posted receives ride through the interior compute) when this
  /// holds; under a non-deferring backend the split would buy nothing.
  [[nodiscard]] virtual bool deferred() const = 0;

  /// Posts a buffered point-to-point send (never blocks; the channel
  /// queue is unbounded).  Identical for both backends — kept on the
  /// interface so *all* shift traffic flows through one seam.
  virtual void post_send(Pe& pe, int dst, std::span<const double> data);

  /// Posts a receive.  Sync completes it inline, blocking until the
  /// message arrives (time charged to WaitStats::recv_wait_ns); Async
  /// queues it on the PE until wait_all.
  virtual void post_recv(Pe& pe, const PendingRecv& recv) = 0;

  /// Completes every receive this PE has posted, in posting order.
  /// Blocking time is charged to WaitStats::overlap_wait_ns.  No-op
  /// when nothing is pending (the sync backend never has pendings).
  virtual void wait_all(Pe& pe) = 0;

 protected:
  /// Drains one message and unpacks it into the target region,
  /// charging blocked time to the recv bucket (`to_overlap` false) or
  /// the overlap bucket (`to_overlap` true).  Records a TransferEvent
  /// when machine tracing is on.
  static void complete(Pe& pe, const PendingRecv& recv, bool to_overlap);
};

/// The original synchronous semantics: post_recv == complete-inline.
class SyncThreadBackend final : public CommBackend {
 public:
  [[nodiscard]] const char* name() const override { return "sync"; }
  [[nodiscard]] CommBackendKind kind() const override {
    return CommBackendKind::Sync;
  }
  [[nodiscard]] bool deferred() const override { return false; }
  void post_recv(Pe& pe, const PendingRecv& recv) override;
  void wait_all(Pe& pe) override;
};

/// Nonblocking receives: post_recv appends to the PE's pending list
/// (PE-thread-private — posted and drained only by the owning PE's
/// thread, so no synchronization beyond the channels themselves) and
/// wait_all drains it in posting order.
class AsyncThreadBackend final : public CommBackend {
 public:
  [[nodiscard]] const char* name() const override { return "async"; }
  [[nodiscard]] CommBackendKind kind() const override {
    return CommBackendKind::Async;
  }
  [[nodiscard]] bool deferred() const override { return true; }
  void post_recv(Pe& pe, const PendingRecv& recv) override;
  void wait_all(Pe& pe) override;
};

[[nodiscard]] std::unique_ptr<CommBackend> make_comm_backend(
    CommBackendKind kind);

}  // namespace simpi

// Runtime data-movement operations, executed SPMD (each PE calls the
// same routine with the same arguments, in the same order).
//
//  * full_cshift  — the unoptimized translation of CSHIFT/EOSHIFT into a
//    distinct destination array: interprocessor transfer of the boundary
//    strip plus an intraprocessor copy of the subgrid bulk (paper
//    Section 2.2, Figure 5).
//  * overlap_shift — the optimized form produced by the offset-array
//    transformation: moves only off-processor data into the overlap area
//    of the *source* array; no intraprocessor copying (Section 3.1).
//    The optional RSD extension widens the transferred cross-section
//    into neighboring overlap areas so that stencil "corner" elements
//    arrive without extra diagonal messages (Section 3.3, Figures 6-10).
//  * copy_array — whole-array local copy (compensation copies inserted
//    when an offset-array criterion is violated).
#pragma once

#include <array>
#include <vector>

#include "simpi/layout.hpp"
#include "simpi/machine.hpp"

namespace simpi {

/// Shift boundary behavior: CSHIFT wraps circularly; EOSHIFT fills with
/// a boundary value.
enum class ShiftKind { Circular, EndOff };

/// Regular-section-descriptor extension for overlap_shift: how far the
/// transferred cross-section extends into the overlap areas of each
/// non-shift dimension (paper notation "[0:N+1,*]" means lo=hi=1 in
/// dimension 0).  Entries for the shifted dimension are ignored.
struct RsdExtension {
  std::array<int, kMaxRank> lo{0, 0, 0};
  std::array<int, kMaxRank> hi{0, 0, 0};

  [[nodiscard]] bool any() const {
    for (int d = 0; d < kMaxRank; ++d) {
      if (lo[d] != 0 || hi[d] != 0) return true;
    }
    return false;
  }
  constexpr bool operator==(const RsdExtension&) const = default;
};

/// Fills the overlap area of `array_id` on the side of dimension `dim`
/// (0-based) that offset references U<...,+shift,...> read from.  After
/// the call, the overlap cell at global position g holds the value of
/// global element wrap(g) (Circular) or the boundary value (EndOff, when
/// g falls outside the array).  Requires halo width >= |shift| on that
/// side.  `ext` widens the cross-section per the RSD (corner pickup);
/// it requires the source halo cells it reads to have been filled by
/// earlier overlap shifts in lower dimensions.
void overlap_shift(Pe& pe, int array_id, int shift, int dim,
                   const RsdExtension& ext = {},
                   ShiftKind kind = ShiftKind::Circular,
                   double boundary = 0.0);

/// dst(g) = src(g + shift) along `dim` with circular wrap (CSHIFT) or
/// boundary fill (EOSHIFT).  dst and src must have identical shape and
/// distribution and be distinct arrays.
void full_cshift(Pe& pe, int dst_id, int src_id, int shift, int dim,
                 ShiftKind kind = ShiftKind::Circular, double boundary = 0.0);

/// dst(g) = src(g) over the owned box (local copy; counts intra bytes).
void copy_array(Pe& pe, int dst_id, int src_id);

/// One maximal run of reader positions [reader_lo, reader_hi] whose
/// source positions are contiguous (starting at src_lo) and owned by a
/// single block coordinate `owner` (-1 = outside the array: EOSHIFT
/// boundary fill).  Exposed for unit testing.
struct ShiftInterval {
  int reader_lo;
  int reader_hi;
  int src_lo;
  int owner;
};

/// Splits reader positions [rlo, rhi] reading source position
/// wrap(g + delta) into maximal single-owner contiguous intervals.
/// With `circular` false, positions outside [1, n] yield owner == -1.
[[nodiscard]] std::vector<ShiftInterval> split_shift_intervals(
    int rlo, int rhi, int delta, int n, const BlockMap& bm, bool circular);

}  // namespace simpi

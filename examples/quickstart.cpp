// Quickstart: compile the paper's 5-point stencil (Figure 1), inspect
// the optimized node program, and run it on a simulated 2x2 machine.
#include <cstdio>

#include "driver/hpfsc.hpp"

int main() {
  using namespace hpfsc;

  // 1. Compile at full optimization (offset arrays + context
  //    partitioning + communication unioning + memory optimizations).
  CompilerOptions options = CompilerOptions::level(4);
  options.passes.offset.live_out = {"DST"};  // only DST is observable
  Compiler compiler;
  CompiledProgram compiled =
      compiler.compile(kernels::kFivePointArraySyntax, options);

  std::printf("=== optimized node program ===\n%s\n",
              compiled.listings.back().code.c_str());

  // 2. Instantiate on a 2x2 simulated distributed-memory machine.
  simpi::MachineConfig mc;
  mc.pe_rows = 2;
  mc.pe_cols = 2;
  Execution exec(std::move(compiled.program), mc);

  // 3. Bind problem size and coefficients; initialize the source array.
  const int n = 256;
  Bindings bindings;
  bindings.set("N", n)
      .set("C1", 0.25)
      .set("C2", 0.25)
      .set("C3", -1.0)
      .set("C4", 0.25)
      .set("C5", 0.25);
  exec.prepare(bindings);
  exec.set_array("SRC",
                 [](int i, int j, int) { return (i % 7) * 0.5 + j * 0.1; });

  // 4. Run 100 stencil applications and report statistics.
  auto stats = exec.run(100);
  std::printf("ran 100 iterations of a %dx%d 5-point stencil on 4 PEs\n", n,
              n);
  std::printf("  wall time          : %8.3f ms\n",
              stats.wall_seconds * 1e3);
  std::printf("  messages sent      : %8llu\n",
              static_cast<unsigned long long>(stats.machine.messages_sent));
  std::printf("  bytes sent         : %8llu\n",
              static_cast<unsigned long long>(stats.machine.bytes_sent));
  std::printf("  intraprocessor copy: %8llu bytes (0 = offset arrays "
              "worked)\n",
              static_cast<unsigned long long>(
                  stats.machine.intra_copy_bytes));

  // 5. Fetch a result value.
  auto dst = exec.get_array("DST");
  std::printf("DST(128,128) = %f\n", dst[127 + 127 * static_cast<std::size_t>(n)]);
  return 0;
}

// Second-order wave equation on a periodic domain using a three-array
// leapfrog scheme — a multi-input stencil that exercises offset arrays
// on several source arrays at once:
//   UNEXT = 2*U - UPREV + c^2 * (laplacian of U)
// The three-way rotation (UPREV <- U <- UNEXT) is expressed in HPF as
// whole-array assignments, which the compiler fuses into the same
// subgrid loop nest.
#include <cmath>
#include <cstdio>

#include "driver/hpfsc.hpp"

namespace {

constexpr const char* kLeapfrog = R"(
PROGRAM WAVE
INTEGER N
REAL C2
REAL U(N,N), UPREV(N,N), UNEXT(N,N)
!HPF$ DISTRIBUTE U(BLOCK,BLOCK)
!HPF$ DISTRIBUTE UPREV(BLOCK,BLOCK)
!HPF$ DISTRIBUTE UNEXT(BLOCK,BLOCK)
UNEXT = 2.0 * U - UPREV                                     &
      + C2 * (CSHIFT(U,-1,1) + CSHIFT(U,+1,1)               &
            + CSHIFT(U,-1,2) + CSHIFT(U,+1,2) - 4.0 * U)
UPREV = U
U     = UNEXT
END
)";

}  // namespace

int main() {
  using namespace hpfsc;
  const int n = 128;
  const int steps = 200;

  CompilerOptions options = CompilerOptions::level(4);
  options.passes.offset.live_out = {"U", "UPREV", "UNEXT"};
  Compiler compiler;
  CompiledProgram compiled = compiler.compile(kLeapfrog, options);
  std::printf("optimized time step:\n%s\n",
              compiled.listings.back().code.c_str());

  simpi::MachineConfig mc;
  mc.pe_rows = 2;
  mc.pe_cols = 2;
  Execution exec(std::move(compiled.program), mc);
  exec.prepare(Bindings{}.set("N", n).set("C2", 0.25));  // c^2 dt^2 / dx^2

  // Gaussian pulse in the center, initially at rest.
  auto pulse = [n](int i, int j, int) {
    double dx = (i - n / 2.0) / 6.0;
    double dy = (j - n / 2.0) / 6.0;
    return std::exp(-(dx * dx + dy * dy));
  };
  exec.set_array("U", pulse);
  exec.set_array("UPREV", pulse);

  auto energy = [&](const std::vector<double>& u) {
    double e = 0.0;
    for (double v : u) e += v * v;
    return e;
  };

  double e0 = energy(exec.get_array("U"));
  auto stats = exec.run(steps);
  double e1 = energy(exec.get_array("U"));

  std::printf("%d leapfrog steps of a %dx%d wave field on 4 PEs\n", steps, n,
              n);
  std::printf("  wall time      : %.1f ms (%.3f ms/step)\n",
              stats.wall_seconds * 1e3, stats.wall_seconds * 1e3 / steps);
  std::printf("  messages       : %llu (%llu per step)\n",
              static_cast<unsigned long long>(stats.machine.messages_sent),
              static_cast<unsigned long long>(stats.machine.messages_sent) /
                  steps);
  std::printf("  field energy   : %.3f -> %.3f (wave disperses, energy "
              "bounded)\n", e0, e1);
  // The scheme is stable for C2 <= 0.5: the field must not blow up.
  if (!(e1 < 100.0 * e0)) {
    std::printf("  UNSTABLE result!\n");
    return 1;
  }
  return 0;
}

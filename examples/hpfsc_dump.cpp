// hpfsc_dump: command-line front door to the compiler.  Reads an HPF
// program from a file (or a named built-in paper kernel), prints the
// per-phase listings at the requested optimization level, and — when
// observability output is requested — executes the program on the
// simulated machine so the trace carries per-PE runtime spans.
//
//   hpfsc_dump [-O0..-O4|--xlhpf] [--live-out A,B]
//              [--trace-out=FILE] [--jsonl-out=FILE] [--obs-summary]
//              [--run] [--n=N] [--iters=K] [--emulate]
//              (FILE | @problem9 | @ninept | @ninept-array | @fivept |
//               @jacobi)
//
// --trace-out writes a Chrome trace-event file (chrome://tracing,
// Perfetto): one span per compiler pass with IR-delta args, plus one
// span per plan step per PE with message/byte/modeled-cost attribution.
// The HPFSC_TRACE environment variable supplies a default path when
// --trace-out is not given.  --obs-summary prints an aggregate table
// to stderr.  Any of these imply --run.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "codegen/spmd_printer.hpp"
#include "driver/hpfsc.hpp"
#include "obs/sinks.hpp"

namespace {

const char* builtin(const std::string& name) {
  using namespace hpfsc::kernels;
  if (name == "@problem9") return kProblem9;
  if (name == "@ninept") return kNinePointCShift;
  if (name == "@ninept-array") return kNinePointArraySyntax;
  if (name == "@fivept") return kFivePointArraySyntax;
  if (name == "@jacobi") return kJacobiTimeLoop;
  return nullptr;
}

void usage() {
  std::fprintf(stderr,
               "usage: hpfsc_dump [-O0..-O4|--xlhpf] [--live-out A,B] "
               "[--trace-out=FILE] [--jsonl-out=FILE] [--obs-summary] "
               "[--run] [--n=N] [--iters=K] [--emulate] "
               "(FILE | @problem9 | @ninept | @ninept-array | @fivept | "
               "@jacobi)\n"
               "  HPFSC_TRACE=<file> in the environment acts as a default "
               "--trace-out.\n");
}

/// Value of "--flag=X" or nullptr when `arg` is not that flag.
const char* flag_value(const std::string& arg, const char* flag) {
  const std::size_t n = std::strlen(flag);
  if (arg.compare(0, n, flag) != 0 || arg.size() <= n || arg[n] != '=') {
    return nullptr;
  }
  return arg.c_str() + n + 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hpfsc;
  CompilerOptions options = CompilerOptions::level(4);
  std::string input;
  std::vector<std::string> live_out;
  std::string trace_out;
  std::string jsonl_out;
  bool obs_summary = false;
  bool run = false;
  bool emulate = false;
  int n = 64;
  int iters = 1;

  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    const char* v = nullptr;
    if (arg.size() == 3 && arg.rfind("-O", 0) == 0 && arg[2] >= '0' &&
        arg[2] <= '4') {
      options = CompilerOptions::level(arg[2] - '0');
    } else if (arg == "--xlhpf") {
      options = CompilerOptions::xlhpf_like();
    } else if (arg == "--live-out" && a + 1 < argc) {
      std::stringstream ss(argv[++a]);
      std::string item;
      while (std::getline(ss, item, ',')) live_out.push_back(item);
    } else if ((v = flag_value(arg, "--trace-out"))) {
      trace_out = v;
    } else if ((v = flag_value(arg, "--jsonl-out"))) {
      jsonl_out = v;
    } else if (arg == "--obs-summary") {
      obs_summary = true;
    } else if (arg == "--run") {
      run = true;
    } else if ((v = flag_value(arg, "--n"))) {
      n = std::atoi(v);
    } else if ((v = flag_value(arg, "--iters"))) {
      iters = std::atoi(v);
    } else if (arg == "--emulate") {
      emulate = true;
    } else if (arg == "-h" || arg == "--help") {
      usage();
      return 0;
    } else {
      input = arg;
    }
  }
  if (input.empty()) {
    usage();
    return 2;
  }

  std::string source;
  if (const char* k = builtin(input)) {
    source = k;
  } else {
    std::ifstream file(input);
    if (!file) {
      std::fprintf(stderr, "hpfsc_dump: cannot open '%s'\n", input.c_str());
      return 2;
    }
    std::stringstream buf;
    buf << file.rdbuf();
    source = buf.str();
  }
  options.passes.offset.live_out = live_out;

  // Observability: install the requested sinks.  HPFSC_TRACE supplies a
  // default Chrome-trace path.  Any sink implies execution (the trace
  // should show runtime spans, not just the compiler).
  if (trace_out.empty() && obs::env_trace_path()) {
    trace_out = obs::env_trace_path();
  }
  obs::TraceSession session;
  try {
    if (!trace_out.empty()) {
      session.add_sink(std::make_unique<obs::ChromeTraceSink>(trace_out));
    }
    if (!jsonl_out.empty()) {
      session.add_sink(std::make_unique<obs::JsonlSink>(jsonl_out));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hpfsc_dump: %s\n", e.what());
    return 2;
  }
  if (obs_summary) {
    session.add_sink(std::make_unique<obs::SummarySink>(std::cerr));
  }
  if (session.enabled()) {
    options.trace = &session;
    run = true;
  }

  try {
    Compiler compiler;
    CompiledProgram compiled = compiler.compile(source, options);
    if (!compiled.diagnostics.empty()) {
      std::fprintf(stderr, "%s", compiled.diagnostics.c_str());
    }
    for (const auto& listing : compiled.listings) {
      std::printf("=== after %s ===\n%s\n", listing.phase.c_str(),
                  listing.code.c_str());
    }
    std::printf("=== SPMD node program ===\n%s\n",
                codegen::SpmdPrinter(compiled.program).print().c_str());
    auto comm = compiled.program.comm_summary();
    std::printf("--- summary ---\n");
    std::printf("full shifts: %d, overlap shifts: %d\n", comm.full_shifts,
                comm.overlap_shifts);
    std::printf("arrays eliminated: %d, copies inserted: %d\n",
                compiled.pipeline.offset.arrays_eliminated,
                compiled.pipeline.offset.copies_inserted);

    if (run) {
      simpi::MachineConfig mc;
      if (compiled.processors) {
        mc.pe_rows = compiled.processors->first;
        mc.pe_cols = compiled.processors->second;
      }
      // SP-2-like cost model (see bench/bench_common.hpp) so modeled
      // costs in the trace are meaningful; busy-wait only on request.
      mc.cost.latency_ns = 100'000;
      mc.cost.ns_per_byte = 28.0;
      mc.cost.memory_ns_per_byte = 2.0;
      mc.cost.cache_ns_per_byte = 0.2;
      mc.cost.emulate = emulate;

      Execution exec(std::move(compiled.program), mc);
      exec.set_trace(session.enabled() ? &session : nullptr);
      exec.prepare(Bindings{}.set("N", n));
      if (exec.program().find_array("U") >= 0) {
        exec.set_array("U",
                       [](int i, int j, int) { return i * 0.25 + j * 0.5; });
      }
      auto stats = exec.run(iters);
      std::printf("--- run (N=%d, %dx%d PEs, %d iter%s) ---\n", n,
                  mc.pe_rows, mc.pe_cols, iters, iters == 1 ? "" : "s");
      std::printf("wall: %.3f ms\n", stats.wall_seconds * 1e3);
      std::printf("machine: %s\n", stats.machine.to_json().c_str());
      session.flush();
    }
  } catch (const CompileError& e) {
    std::fprintf(stderr, "compilation failed:\n%s", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "execution failed: %s\n", e.what());
    return 1;
  }
  return 0;
}

// hpfsc_dump: command-line front door to the compiler.  Reads an HPF
// program from a file (or a named built-in paper kernel) and prints the
// per-phase listings at the requested optimization level.
//
//   hpfsc_dump [-O0..-O4|--xlhpf] [--live-out A,B] (FILE | @problem9 |
//              @ninept | @ninept-array | @fivept | @jacobi)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "codegen/spmd_printer.hpp"
#include "driver/hpfsc.hpp"

namespace {

const char* builtin(const std::string& name) {
  using namespace hpfsc::kernels;
  if (name == "@problem9") return kProblem9;
  if (name == "@ninept") return kNinePointCShift;
  if (name == "@ninept-array") return kNinePointArraySyntax;
  if (name == "@fivept") return kFivePointArraySyntax;
  if (name == "@jacobi") return kJacobiTimeLoop;
  return nullptr;
}

void usage() {
  std::fprintf(stderr,
               "usage: hpfsc_dump [-O0..-O4|--xlhpf] [--live-out A,B] "
               "(FILE | @problem9 | @ninept | @ninept-array | @fivept | "
               "@jacobi)\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hpfsc;
  CompilerOptions options = CompilerOptions::level(4);
  std::string input;
  std::vector<std::string> live_out;

  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg.size() == 3 && arg.rfind("-O", 0) == 0 && arg[2] >= '0' &&
        arg[2] <= '4') {
      options = CompilerOptions::level(arg[2] - '0');
    } else if (arg == "--xlhpf") {
      options = CompilerOptions::xlhpf_like();
    } else if (arg == "--live-out" && a + 1 < argc) {
      std::stringstream ss(argv[++a]);
      std::string item;
      while (std::getline(ss, item, ',')) live_out.push_back(item);
    } else if (arg == "-h" || arg == "--help") {
      usage();
      return 0;
    } else {
      input = arg;
    }
  }
  if (input.empty()) {
    usage();
    return 2;
  }

  std::string source;
  if (const char* k = builtin(input)) {
    source = k;
  } else {
    std::ifstream file(input);
    if (!file) {
      std::fprintf(stderr, "hpfsc_dump: cannot open '%s'\n", input.c_str());
      return 2;
    }
    std::stringstream buf;
    buf << file.rdbuf();
    source = buf.str();
  }
  options.passes.offset.live_out = live_out;

  try {
    Compiler compiler;
    CompiledProgram compiled = compiler.compile(source, options);
    if (!compiled.diagnostics.empty()) {
      std::fprintf(stderr, "%s", compiled.diagnostics.c_str());
    }
    for (const auto& listing : compiled.listings) {
      std::printf("=== after %s ===\n%s\n", listing.phase.c_str(),
                  listing.code.c_str());
    }
    std::printf("=== SPMD node program ===\n%s\n",
                codegen::SpmdPrinter(compiled.program).print().c_str());
    auto comm = compiled.program.comm_summary();
    std::printf("--- summary ---\n");
    std::printf("full shifts: %d, overlap shifts: %d\n", comm.full_shifts,
                comm.overlap_shifts);
    std::printf("arrays eliminated: %d, copies inserted: %d\n",
                compiled.pipeline.offset.arrays_eliminated,
                compiled.pipeline.offset.copies_inserted);
  } catch (const CompileError& e) {
    std::fprintf(stderr, "compilation failed:\n%s", e.what());
    return 1;
  }
  return 0;
}

// hpfsc_dump: command-line front door to the compiler.  Reads an HPF
// program from a file (or a named built-in paper kernel), prints the
// per-phase listings at the requested optimization level, and — when
// observability output is requested — executes the program on the
// simulated machine so the trace carries per-PE runtime spans.
//
//   hpfsc_dump [-O0..-O4|--xlhpf] [--live-out A,B]
//              [--trace-out=FILE] [--jsonl-out=FILE] [--obs-summary]
//              [--metrics-out=FILE] [--prom-out=FILE]
//              [--roofline-out=FILE] [--postmortem-out=FILE]
//              [--run] [--n=N] [--iters=K] [--steps=K] [--emulate]
//              [--serve-batch=FILE] [--workers=K]
//              (FILE | @problem9 | @ninept | @ninept-array | @fivept |
//               @jacobi)
//
// --trace-out writes a Chrome trace-event file (chrome://tracing,
// Perfetto): one span per compiler pass with IR-delta args, plus one
// span per plan step per PE with message/byte/modeled-cost attribution.
// The HPFSC_TRACE environment variable supplies a default path when
// --trace-out is not given.  --obs-summary prints an aggregate table to
// stderr, plus one line per latency histogram (count/p50/p90/p99/max).
// --metrics-out / --prom-out write the merged metrics registry (trace
// counters teed through the default registry plus the service-layer
// latency histograms) as JSON / Prometheus text.  Any of these imply
// --run.
//
// --steps=K issues K identical requests through the service layer:
// request 0 compiles (cold), requests 1..K-1 hit the plan cache and
// reuse the prepared execution — the warm-path speedup, measured from
// the CLI.  --serve-batch=FILE serves a request file (one request per
// line: INPUT LEVEL N STEPS, '#' comments) through a --workers=K pool
// sharing one plan cache, and reports per-request latencies plus cache
// hit/miss/coalesced counters, followed by a per-request reassembly
// table (request id, queue wait, compile-or-hit, run, comm bytes) built
// from the request-scoped trace context.
//
// --roofline-out=FILE (implies --run) writes the run's roofline point —
// FLOPs, bytes moved (kernel references + messages), arithmetic
// intensity, achieved GFLOP/s — as JSON, and publishes the same values
// as labeled gauges (roofline.*{stencil=...,tier=...,n=...}) through
// the metrics registry.  --postmortem-out=FILE dumps the flight
// recorder's last events per thread as a text postmortem at exit —
// including after a compile/run failure, which is the flag's point.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "codegen/spmd_printer.hpp"
#include "driver/hpfsc.hpp"
#include "executor/wait_profile.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/sinks.hpp"
#include "serve/daemon.hpp"
#include "serve/introspect.hpp"
#include "service/service.hpp"

namespace {

const char* builtin(const std::string& name) {
  using namespace hpfsc::kernels;
  if (name == "@problem9") return kProblem9;
  if (name == "@ninept") return kNinePointCShift;
  if (name == "@ninept-array") return kNinePointArraySyntax;
  if (name == "@fivept") return kFivePointArraySyntax;
  if (name == "@jacobi") return kJacobiTimeLoop;
  return nullptr;
}

void usage() {
  std::fprintf(stderr,
               "usage: hpfsc_dump [-O0..-O4|--xlhpf] [--live-out A,B] "
               "[--trace-out=FILE] [--jsonl-out=FILE] [--obs-summary] "
               "[--metrics-out=FILE] [--prom-out=FILE] "
               "[--roofline-out=FILE] [--postmortem-out=FILE] "
               "[--run] [--n=N] [--iters=K] [--steps=K] [--emulate] "
               "[--comm-backend=sync|async] "
               "[--serve-batch=FILE] [--workers=K] [--cache-dir=DIR] "
               "[--tiered] [--queue-depth=K] "
               "[--introspect-port=P] [--statusz-out=FILE] "
               "(FILE | @problem9 | @ninept | @ninept-array | @fivept | "
               "@jacobi)\n"
               "  HPFSC_TRACE=<file> in the environment acts as a default "
               "--trace-out.\n"
               "  --steps=K repeats the request K times through the plan "
               "cache (cold vs. warm latency).\n"
               "  --comm-backend selects how shifts complete receives "
               "(async overlaps halo exchange with interior compute); "
               "also settable via HPFSC_COMM_BACKEND.\n"
               "  --serve-batch=FILE serves 'INPUT LEVEL N STEPS [CLIENT]' "
               "request lines through the serving daemon.\n"
               "  --cache-dir=DIR persists compiled plans and warm-starts "
               "the cache from them on the next run.\n"
               "  --tiered answers first requests from the interpreter "
               "tier and hot-swaps to the optimized plan when ready.\n"
               "  --queue-depth=K bounds the admission queue; requests "
               "beyond it are shed.\n"
               "  --introspect-port=P serves /statusz /metricsz /tracez "
               "over localhost HTTP (0 picks a port).\n"
               "  --statusz-out=FILE writes the statusz page to a file "
               "before daemon shutdown.\n"
               "  --metrics-out / --prom-out write the metrics registry "
               "(counters, gauges, latency histograms) as JSON / "
               "Prometheus text.\n"
               "  --roofline-out=FILE writes the run's FLOPs, bytes "
               "moved, arithmetic intensity, and GFLOP/s as JSON.\n"
               "  --postmortem-out=FILE dumps the flight recorder as a "
               "text postmortem at exit (works after failures too).\n");
}

/// Value of "--flag=X" or nullptr when `arg` is not that flag.
const char* flag_value(const std::string& arg, const char* flag) {
  const std::size_t n = std::strlen(flag);
  if (arg.compare(0, n, flag) != 0 || arg.size() <= n || arg[n] != '=') {
    return nullptr;
  }
  return arg.c_str() + n + 1;
}

/// Reads a built-in kernel name or a file into `out`.
bool load_source(const std::string& input, std::string* out) {
  if (const char* k = builtin(input)) {
    *out = k;
    return true;
  }
  std::ifstream file(input);
  if (!file) return false;
  std::stringstream buf;
  buf << file.rdbuf();
  *out = buf.str();
  return true;
}

/// Parses "O0".."O4" / "-O0".."-O4" / "xlhpf" / "--xlhpf".
bool parse_level(std::string word, hpfsc::CompilerOptions* out) {
  while (!word.empty() && word.front() == '-') word.erase(word.begin());
  if (word == "xlhpf") {
    *out = hpfsc::CompilerOptions::xlhpf_like();
    return true;
  }
  if (word.size() == 2 && word[0] == 'O' && word[1] >= '0' &&
      word[1] <= '4') {
    *out = hpfsc::CompilerOptions::level(word[1] - '0');
    return true;
  }
  return false;
}

hpfsc::Bindings bindings_for(int n) {
  // NSTEPS serves the @jacobi time loop; programs without it ignore
  // the extra binding.
  return hpfsc::Bindings{}.set("N", n).set("NSTEPS", 1);
}

void init_input_arrays(hpfsc::Execution& exec) {
  if (exec.program().find_array("U") >= 0) {
    exec.set_array("U",
                   [](int i, int j, int) { return i * 0.25 + j * 0.5; });
  }
}

/// Where to put aggregate metrics at exit (--metrics-out, --prom-out,
/// --obs-summary histogram lines).
struct MetricsOutput {
  std::string json_path;
  std::string prom_path;
  bool summary = false;
  [[nodiscard]] bool wanted() const {
    return summary || !json_path.empty() || !prom_path.empty();
  }
};

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (out) out << text;
  if (!out) {
    std::fprintf(stderr, "hpfsc_dump: cannot write '%s'\n", path.c_str());
    return false;
  }
  return true;
}

/// Merges the process-wide registry (trace-counter tee) with the
/// service's latency histograms (when a service ran) and writes the
/// requested outputs.  Returns false on I/O failure.
bool emit_metrics(const MetricsOutput& out,
                  const hpfsc::obs::MetricsRegistry* service_metrics) {
  using namespace hpfsc;
  if (!out.wanted()) return true;
  obs::MetricsRegistry merged;
  merged.merge_from(obs::default_registry());
  if (service_metrics != nullptr) merged.merge_from(*service_metrics);
  if (out.summary) {
    const std::string lines = merged.summary();
    if (!lines.empty()) {
      std::fprintf(stderr, "--- latency histograms ---\n%s", lines.c_str());
    }
  }
  bool ok = true;
  if (!out.json_path.empty()) {
    ok &= write_text_file(out.json_path, merged.to_json() + "\n");
  }
  if (!out.prom_path.empty()) {
    ok &= write_text_file(out.prom_path, merged.to_prometheus());
  }
  return ok;
}

/// --roofline-out / roofline gauges: one roofline point for a completed
/// run.  Bytes moved = subgrid kernel references + interprocessor
/// message bytes (the two traffic classes the paper's optimizations
/// target); arithmetic intensity = FLOPs / bytes moved; achieved
/// GFLOP/s = FLOPs / wall seconds / 1e9.  The same values publish as
/// labeled gauges (roofline.*{stencil=..,tier=..,n=..}) into the
/// process registry, so --prom-out carries per-(stencil, tier, N)
/// series.
bool write_roofline(const std::string& path, const std::string& stencil,
                    const std::string& level, int n, int iters,
                    const hpfsc::Execution::RunStats& stats) {
  using namespace hpfsc;
  const double flops = static_cast<double>(stats.tier.flops);
  const double kernel_bytes =
      static_cast<double>(stats.machine.kernel_ref_bytes);
  const double comm_bytes = static_cast<double>(stats.machine.bytes_sent);
  const double bytes = kernel_bytes + comm_bytes;
  // Arithmetic intensity is undefined for zero-FLOP (copy/shift-only)
  // runs: suppress the ratio instead of publishing inf/NaN.
  const bool has_flops = flops > 0.0;
  const double bytes_per_flop = has_flops ? bytes / flops : 0.0;
  const double intensity = bytes > 0.0 ? flops / bytes : 0.0;
  const double gflops = stats.wall_seconds > 0.0
                            ? flops / stats.wall_seconds / 1e9
                            : 0.0;
  // Label with the tier that handled the most elements.
  const std::uint64_t interp_e = stats.tier.interpreter_elements;
  const std::uint64_t comp_e = stats.tier.compiled_elements;
  const std::uint64_t simd_e = stats.tier.simd_elements;
  const char* tier = simd_e >= comp_e && simd_e >= interp_e && simd_e > 0
                         ? "simd"
                     : interp_e > comp_e ? "interpreter"
                                         : "compiled";

  obs::MetricsRegistry& reg = obs::default_registry();
  const std::string nstr = std::to_string(n);
  const auto gauge = [&](const char* base, double value) {
    reg.set_gauge(obs::labeled_metric(
                      base, {{"stencil", stencil}, {"tier", tier},
                             {"n", nstr}}),
                  value);
  };
  gauge("roofline.flops", flops);
  if (has_flops) gauge("roofline.bytes_per_flop", bytes_per_flop);
  gauge("roofline.gflops", gflops);

  std::printf("--- roofline (N=%d, tier=%s) ---\n", n, tier);
  if (has_flops) {
    std::printf(
        "flops: %.0f, kernel bytes: %.0f, comm bytes: %.0f, "
        "bytes/flop: %.3f, intensity: %.3f flop/byte, %.4f GFLOP/s\n",
        flops, kernel_bytes, comm_bytes, bytes_per_flop, intensity, gflops);
  } else {
    std::printf(
        "flops: 0, kernel bytes: %.0f, comm bytes: %.0f, "
        "bytes/flop: n/a (zero-FLOP run), %.4f GFLOP/s\n",
        kernel_bytes, comm_bytes, gflops);
  }

  if (path.empty()) return true;
  std::string json = "{";
  json += "\"stencil\":\"" + obs::json_escape(stencil) + "\"";
  json += ",\"level\":\"" + obs::json_escape(level) + "\"";
  json += ",\"n\":" + std::to_string(n);
  json += ",\"iters\":" + std::to_string(iters);
  json += ",\"tier\":\"" + std::string(tier) + "\"";
  json += ",\"flops\":" + obs::json_number(flops);
  json += ",\"kernel_ref_bytes\":" + obs::json_number(kernel_bytes);
  json += ",\"comm_bytes\":" + obs::json_number(comm_bytes);
  json += ",\"bytes_per_flop\":";
  json += has_flops ? obs::json_number(bytes_per_flop) : "null";
  json += ",\"arithmetic_intensity\":" + obs::json_number(intensity);
  json += ",\"gflops\":" + obs::json_number(gflops);
  json += ",\"wall_seconds\":" + obs::json_number(stats.wall_seconds);
  json += "}\n";
  // Append, not truncate: repeated invocations (e.g. one per tier or
  // per kernel) accumulate a JSONL roofline table in one file.
  std::ofstream f(path, std::ios::app);
  if (!f) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return false;
  }
  f << json;
  return true;
}

/// --serve-batch options beyond the request file itself.
struct ServeBatchOptions {
  int workers = 4;
  std::string cache_dir;        ///< --cache-dir: persistent plan store
  bool tiered = false;          ///< --tiered: interpreter-first + promote
  std::size_t queue_depth = 64; ///< --queue-depth: admission bound
  int introspect_port = -1;     ///< --introspect-port: statusz listener
                                ///  (-1 off, 0 ephemeral)
  std::string statusz_out;      ///< --statusz-out: statusz page to a file
};

/// --obs-summary wait-state footer: where the run's wall time went,
/// summed across PEs, plus the critical-path summary the profiler
/// reports (exposed-communication fraction, Amdahl overlap bound).
void print_wait_state(const hpfsc::Execution::RunStats& stats) {
  const hpfsc::WaitProfile p = hpfsc::WaitProfile::from_run(stats);
  const simpi::WaitStats& w = stats.machine.wait;
  std::fprintf(stderr, "--- wait-state (ms, summed over %zu PEs) ---\n",
               p.rows.size());
  std::fprintf(stderr, "recv: %.3f  barrier: %.3f  pool: %.3f",
               static_cast<double>(w.recv_wait_ns) / 1e6,
               static_cast<double>(w.barrier_wait_ns) / 1e6,
               static_cast<double>(w.pool_wait_ns) / 1e6);
  // Only under the async backend; keeps sync output (and its goldens)
  // byte-identical.
  if (w.overlap_wait_ns != 0) {
    std::fprintf(stderr, "  overlap: %.3f",
                 static_cast<double>(w.overlap_wait_ns) / 1e6);
  }
  std::fprintf(stderr, "\n");
  std::fprintf(stderr,
               "exposed-comm fraction: %.4f, overlap speedup bound: "
               "%.3fx, reconciled: %s\n",
               p.exposed_comm_fraction, p.overlap_speedup_bound,
               p.reconciled() ? "yes" : "no");
}

/// Parses one request line: INPUT LEVEL N STEPS [CLIENT].  Returns
/// false (with *error set) on malformed input; true with line->input
/// empty for blanks/comments.
struct BatchLine {
  std::string input;
  std::string level;
  int n = 0;
  int steps = 0;
  std::string client = "cli";
};

bool parse_batch_line(const std::string& text, BatchLine* line,
                      std::string* error) {
  std::stringstream ss(text);
  if (!(ss >> line->input) || line->input[0] == '#') {
    line->input.clear();
    return true;  // blank or comment
  }
  std::string n_tok;
  std::string steps_tok;
  if (!(ss >> line->level >> n_tok >> steps_tok)) {
    *error = "expected 'INPUT LEVEL N STEPS [CLIENT]'";
    return false;
  }
  char* end = nullptr;
  line->n = static_cast<int>(std::strtol(n_tok.c_str(), &end, 10));
  if (*end != '\0' || line->n <= 0) {
    *error = "N must be a positive integer, got '" + n_tok + "'";
    return false;
  }
  line->steps =
      static_cast<int>(std::strtol(steps_tok.c_str(), &end, 10));
  if (*end != '\0' || line->steps <= 0) {
    *error = "STEPS must be a positive integer, got '" + steps_tok + "'";
    return false;
  }
  std::string extra;
  if (ss >> line->client) {
    if (ss >> extra) {
      *error = "trailing token '" + extra + "'";
      return false;
    }
  }
  return true;
}

/// --serve-batch: parse 'INPUT LEVEL N STEPS [CLIENT]' request lines,
/// serve them through the daemon (bounded admission queue, optional
/// persistent plan cache and tiered promotion), report latencies and
/// cache counters.
int serve_batch(const std::string& path, const ServeBatchOptions& opt,
                const std::vector<std::string>& live_out,
                const simpi::MachineConfig& mc,
                hpfsc::obs::TraceSession* trace,
                const MetricsOutput& metrics_out) {
  using namespace hpfsc;
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "hpfsc_dump: cannot open batch file '%s'\n",
                 path.c_str());
    return 2;
  }

  std::vector<BatchLine> lines;
  std::string text;
  int lineno = 0;
  while (std::getline(file, text)) {
    ++lineno;
    BatchLine line;
    std::string error;
    if (!parse_batch_line(text, &line, &error)) {
      std::fprintf(stderr,
                   "hpfsc_dump: batch line %d: malformed request '%s': %s\n",
                   lineno, text.c_str(), error.c_str());
      return 2;
    }
    if (line.input.empty()) continue;
    lines.push_back(std::move(line));
  }
  if (lines.empty()) {
    std::fprintf(stderr, "hpfsc_dump: batch file '%s' has no requests\n",
                 path.c_str());
    return 2;
  }

  serve::DaemonConfig dcfg;
  dcfg.service.machine = mc;
  dcfg.service.trace = trace;
  dcfg.workers = opt.workers;
  dcfg.queue_depth = opt.queue_depth;
  dcfg.tiered = opt.tiered;
  dcfg.cache_dir = opt.cache_dir;
  std::unique_ptr<serve::ServeDaemon> daemon;
  try {
    daemon = std::make_unique<serve::ServeDaemon>(dcfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hpfsc_dump: %s\n", e.what());
    return 2;
  }
  serve::Introspector introspector(*daemon);
  if (opt.introspect_port >= 0) {
    if (!introspector.serve_on(opt.introspect_port)) {
      std::fprintf(stderr,
                   "hpfsc_dump: cannot start the introspection listener "
                   "on port %d\n",
                   opt.introspect_port);
      return 2;
    }
    std::fprintf(stderr, "introspect: http://127.0.0.1:%d/statusz\n",
                 introspector.port());
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::optional<std::future<serve::ServeResponse>>> futures;
  std::vector<std::string> shed_errors(lines.size());
  futures.reserve(lines.size());
  for (const BatchLine& line : lines) {
    serve::ServeRequest req;
    req.client = line.client;
    if (!load_source(line.input, &req.request.source)) {
      std::fprintf(stderr, "hpfsc_dump: cannot open '%s'\n",
                   line.input.c_str());
      return 2;
    }
    if (!parse_level(line.level, &req.request.options)) {
      std::fprintf(stderr, "hpfsc_dump: bad level '%s' in batch file\n",
                   line.level.c_str());
      return 2;
    }
    req.request.options.passes.offset.live_out = live_out;
    req.request.bindings = bindings_for(line.n);
    req.request.steps = line.steps;
    req.request.init = init_input_arrays;
    try {
      futures.emplace_back(daemon->submit(std::move(req)));
    } catch (const serve::AdmissionRejected& e) {
      shed_errors[futures.size()] = e.what();
      futures.emplace_back(std::nullopt);
    }
  }

  std::printf("--- serve-batch (%zu requests, %d workers) ---\n",
              lines.size(), dcfg.workers);
  if (opt.tiered) {
    std::printf("%4s  %-16s %-6s %6s %6s  %-9s %-7s %10s\n", "#", "input",
                "level", "n", "steps", "cache", "tier", "latency");
  } else {
    std::printf("%4s  %-16s %-6s %6s %6s  %-9s %10s\n", "#", "input",
                "level", "n", "steps", "cache", "latency");
  }
  int failures = 0;
  std::vector<std::optional<serve::ServeResponse>> responses(futures.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const BatchLine& line = lines[i];
    if (!futures[i]) {
      ++failures;
      std::printf("%4zu  %-16s %-6s %6d %6d  shed: %s\n", i,
                  line.input.c_str(), line.level.c_str(), line.n, line.steps,
                  shed_errors[i].c_str());
      continue;
    }
    try {
      serve::ServeResponse r = futures[i]->get();
      if (opt.tiered) {
        std::printf("%4zu  %-16s %-6s %6d %6d  %-9s %-7s %8.3f ms\n", i,
                    line.input.c_str(), line.level.c_str(), line.n,
                    line.steps, service::to_string(r.outcome), r.tier,
                    r.latency_seconds * 1e3);
      } else {
        std::printf("%4zu  %-16s %-6s %6d %6d  %-9s %8.3f ms\n", i,
                    line.input.c_str(), line.level.c_str(), line.n,
                    line.steps, service::to_string(r.outcome),
                    r.latency_seconds * 1e3);
      }
      responses[i] = std::move(r);
    } catch (const std::exception& e) {
      ++failures;
      std::printf("%4zu  %-16s %-6s %6d %6d  error: %s\n", i,
                  line.input.c_str(), line.level.c_str(), line.n, line.steps,
                  e.what());
    }
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // Snapshot the status page while the daemon is still live (queue
  // drained, workers parked) — after shutdown the page would only show
  // the stopping state.
  if (!opt.statusz_out.empty() &&
      !introspector.write_statusz(opt.statusz_out)) {
    std::fprintf(stderr, "hpfsc_dump: cannot write '%s'\n",
                 opt.statusz_out.c_str());
    return 2;
  }
  daemon->shutdown();

  // Per-request reassembly: the phase breakdown the request-scoped
  // trace context carries — queue wait, compile-or-hit, run, and the
  // run's communication volume — keyed by the request id that links
  // this row to every span the request produced in --jsonl-out.
  std::printf("--- per-request reassembly ---\n");
  std::printf("%4s  %-8s %-9s %11s %11s %11s %12s\n", "#", "req", "cache",
              "queue", "compile", "run", "comm-bytes");
  for (std::size_t i = 0; i < responses.size(); ++i) {
    if (!responses[i]) {
      std::printf("%4zu  %-8s %-9s\n", i, "-",
                  futures[i] ? "error" : "shed");
      continue;
    }
    const serve::ServeResponse& r = *responses[i];
    std::string req = "req#" + std::to_string(r.request_id);
    std::printf("%4zu  %-8s %-9s %8.3f ms %8.3f ms %8.3f ms %12llu\n", i,
                req.c_str(), service::to_string(r.outcome),
                r.queue_seconds * 1e3, r.compile_seconds * 1e3,
                r.run_seconds * 1e3,
                static_cast<unsigned long long>(r.stats.machine.bytes_sent));
  }

  service::StencilService& svc = daemon->service();
  const service::CacheCounters c = svc.cache_counters();
  std::printf("--- cache ---\n");
  std::printf(
      "hits: %llu, misses: %llu, coalesced: %llu, evictions: %llu, "
      "resident: %zu\n",
      static_cast<unsigned long long>(c.hits),
      static_cast<unsigned long long>(c.misses),
      static_cast<unsigned long long>(c.coalesced),
      static_cast<unsigned long long>(c.evictions), svc.cache_size());
  if (!opt.cache_dir.empty() && daemon->store() != nullptr) {
    const serve::StoreCounters& s = daemon->store()->counters();
    std::printf(
        "store: warmed %zu, saved %llu, refreshed %llu, skipped %llu "
        "(corrupt %llu, version %llu)\n",
        daemon->warm_started(), static_cast<unsigned long long>(s.saved),
        static_cast<unsigned long long>(s.save_skipped),
        static_cast<unsigned long long>(s.skipped()),
        static_cast<unsigned long long>(s.skipped_corrupt),
        static_cast<unsigned long long>(s.skipped_version));
  }
  if (opt.tiered) {
    std::printf("tiers: promotions %.0f, failures %.0f\n",
                svc.metrics().counter("serve.promotions_total"),
                svc.metrics().counter("serve.promotion_failures_total"));
  }
  if (daemon->shed_total() > 0) {
    std::printf("shed: %llu\n",
                static_cast<unsigned long long>(daemon->shed_total()));
  }
  // Wait-state rollup of every served request (the serve.wait.*
  // histograms the sessions record, milliseconds summed across PEs).
  const obs::Histogram wait_recv =
      svc.metrics().histogram("serve.wait.recv_ms");
  if (wait_recv.count() > 0) {
    std::printf(
        "wait: recv %.3f ms, barrier %.3f ms, pool %.3f ms "
        "(%llu requests)\n",
        wait_recv.sum(),
        svc.metrics().histogram("serve.wait.barrier_ms").sum(),
        svc.metrics().histogram("serve.wait.pool_ms").sum(),
        static_cast<unsigned long long>(wait_recv.count()));
  }
  std::printf("wall: %.3f ms, throughput: %.1f requests/s\n", wall * 1e3,
              static_cast<double>(lines.size()) / wall);
  if (trace != nullptr) trace->flush();
  if (!emit_metrics(metrics_out, &svc.metrics())) return 2;
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hpfsc;
  CompilerOptions options = CompilerOptions::level(4);
  std::string input;
  std::vector<std::string> live_out;
  std::string trace_out;
  std::string jsonl_out;
  MetricsOutput metrics_out;
  bool obs_summary = false;
  bool run = false;
  bool emulate = false;
  /// unset = machine default (HPFSC_COMM_BACKEND or config default)
  std::optional<simpi::CommBackendKind> comm_backend;
  int n = 64;
  int iters = 1;
  int steps = 1;
  ServeBatchOptions serve_opts;
  std::string serve_batch_path;
  std::string roofline_out;
  std::string postmortem_out;
  std::string level_name = "O4";

  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    const char* v = nullptr;
    if (arg.size() == 3 && arg.rfind("-O", 0) == 0 && arg[2] >= '0' &&
        arg[2] <= '4') {
      options = CompilerOptions::level(arg[2] - '0');
      level_name = arg.substr(1);
    } else if (arg == "--xlhpf") {
      options = CompilerOptions::xlhpf_like();
      level_name = "xlhpf";
    } else if (arg == "--live-out" && a + 1 < argc) {
      std::stringstream ss(argv[++a]);
      std::string item;
      while (std::getline(ss, item, ',')) live_out.push_back(item);
    } else if ((v = flag_value(arg, "--trace-out"))) {
      trace_out = v;
    } else if ((v = flag_value(arg, "--jsonl-out"))) {
      jsonl_out = v;
    } else if ((v = flag_value(arg, "--metrics-out"))) {
      metrics_out.json_path = v;
      run = true;
    } else if ((v = flag_value(arg, "--prom-out"))) {
      metrics_out.prom_path = v;
      run = true;
    } else if (arg == "--obs-summary") {
      obs_summary = true;
      metrics_out.summary = true;
    } else if (arg == "--run") {
      run = true;
    } else if ((v = flag_value(arg, "--n"))) {
      n = std::atoi(v);
    } else if ((v = flag_value(arg, "--iters"))) {
      iters = std::atoi(v);
    } else if ((v = flag_value(arg, "--steps"))) {
      steps = std::atoi(v);
      run = true;
    } else if ((v = flag_value(arg, "--roofline-out"))) {
      roofline_out = v;
      run = true;
    } else if ((v = flag_value(arg, "--postmortem-out"))) {
      postmortem_out = v;
    } else if ((v = flag_value(arg, "--serve-batch"))) {
      serve_batch_path = v;
    } else if ((v = flag_value(arg, "--workers"))) {
      serve_opts.workers = std::atoi(v);
    } else if ((v = flag_value(arg, "--cache-dir"))) {
      serve_opts.cache_dir = v;
    } else if (arg == "--tiered") {
      serve_opts.tiered = true;
    } else if ((v = flag_value(arg, "--introspect-port"))) {
      serve_opts.introspect_port = std::atoi(v);
    } else if ((v = flag_value(arg, "--statusz-out"))) {
      serve_opts.statusz_out = v;
    } else if ((v = flag_value(arg, "--queue-depth"))) {
      const int depth = std::atoi(v);
      if (depth <= 0) {
        std::fprintf(stderr, "hpfsc_dump: --queue-depth must be positive\n");
        return 2;
      }
      serve_opts.queue_depth = static_cast<std::size_t>(depth);
    } else if (arg == "--emulate") {
      emulate = true;
    } else if ((v = flag_value(arg, "--comm-backend"))) {
      if (std::strcmp(v, "sync") == 0) {
        comm_backend = simpi::CommBackendKind::Sync;
      } else if (std::strcmp(v, "async") == 0) {
        comm_backend = simpi::CommBackendKind::Async;
      } else {
        std::fprintf(stderr,
                     "hpfsc_dump: --comm-backend must be sync or async\n");
        return 2;
      }
    } else if (arg == "-h" || arg == "--help") {
      usage();
      return 0;
    } else {
      input = arg;
    }
  }
  if (input.empty() && serve_batch_path.empty()) {
    usage();
    return 2;
  }

  // --postmortem-out dumps on every exit path — the interesting dumps
  // are the ones after a CompileError or a runtime abort, where the
  // flight recorder holds the events leading up to the incident.
  struct PostmortemAtExit {
    std::string path;
    ~PostmortemAtExit() {
      if (path.empty()) return;
      if (!hpfsc::obs::FlightRecorder::instance().dump_postmortem(path)) {
        std::fprintf(stderr, "hpfsc_dump: cannot write '%s'\n",
                     path.c_str());
      }
    }
  } postmortem{postmortem_out};

  std::string source;
  if (!input.empty() && !load_source(input, &source)) {
    std::fprintf(stderr, "hpfsc_dump: cannot open '%s'\n", input.c_str());
    return 2;
  }
  options.passes.offset.live_out = live_out;

  // Observability: install the requested sinks.  HPFSC_TRACE supplies a
  // default Chrome-trace path.  Any sink implies execution (the trace
  // should show runtime spans, not just the compiler).
  if (trace_out.empty() && obs::env_trace_path()) {
    trace_out = obs::env_trace_path();
  }
  obs::TraceSession session;
  try {
    if (!trace_out.empty()) {
      session.add_sink(std::make_unique<obs::ChromeTraceSink>(trace_out));
    }
    if (!jsonl_out.empty()) {
      session.add_sink(std::make_unique<obs::JsonlSink>(jsonl_out));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hpfsc_dump: %s\n", e.what());
    return 2;
  }
  if (obs_summary) {
    session.add_sink(std::make_unique<obs::SummarySink>(std::cerr));
  }
  // Tee trace counters into the process-wide registry so --metrics-out /
  // --prom-out carry them (as gauges) alongside the latency histograms.
  if (metrics_out.wanted()) {
    session.set_metrics(&obs::default_registry());
  }
  // SP-2-like cost model (see bench/bench_common.hpp) so modeled costs
  // in the trace are meaningful; busy-wait only on request.
  simpi::MachineConfig mc;
  mc.cost.latency_ns = 100'000;
  mc.cost.ns_per_byte = 28.0;
  mc.cost.memory_ns_per_byte = 2.0;
  mc.cost.cache_ns_per_byte = 0.2;
  mc.cost.emulate = emulate;
  if (comm_backend) mc.comm_backend = *comm_backend;

  // A session with no sinks still tees counters into the registry, so
  // metrics output alone is enough reason to attach it everywhere.
  obs::TraceSession* trace_ptr =
      session.enabled() || metrics_out.wanted() ? &session : nullptr;
  if (!serve_batch_path.empty()) {
    return serve_batch(serve_batch_path, serve_opts, live_out, mc, trace_ptr,
                       metrics_out);
  }
  if (trace_ptr != nullptr) {
    options.trace = trace_ptr;
    run = true;
  }

  try {
    Compiler compiler;
    CompiledProgram compiled = compiler.compile(source, options);
    if (!compiled.diagnostics.empty()) {
      std::fprintf(stderr, "%s", compiled.diagnostics.c_str());
    }
    for (const auto& listing : compiled.listings) {
      std::printf("=== after %s ===\n%s\n", listing.phase.c_str(),
                  listing.code.c_str());
    }
    std::printf("=== SPMD node program ===\n%s\n",
                codegen::SpmdPrinter(compiled.program).print().c_str());
    auto comm = compiled.program.comm_summary();
    std::printf("--- summary ---\n");
    std::printf("full shifts: %d, overlap shifts: %d\n", comm.full_shifts,
                comm.overlap_shifts);
    std::printf("arrays eliminated: %d, copies inserted: %d\n",
                compiled.pipeline.offset.arrays_eliminated,
                compiled.pipeline.offset.copies_inserted);

    if (run && steps > 1) {
      // Repeat the request through the service layer: request 0 misses
      // the plan cache and compiles (cold); requests 1..K-1 hit it and
      // reuse the one prepared Execution (warm).
      service::ServiceConfig cfg;
      cfg.machine = mc;
      cfg.trace = trace_ptr;
      service::StencilService svc(cfg);
      service::Session client(svc);
      std::vector<double> latencies;
      Execution::RunStats last_stats;
      for (int r = 0; r < steps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        service::RunRequest req;
        req.plan = client.compile(source, options);
        req.bindings = bindings_for(n);
        req.steps = iters;
        req.init = init_input_arrays;
        last_stats = client.run(req);
        latencies.push_back(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count());
      }
      double warm = 0.0;
      for (std::size_t r = 1; r < latencies.size(); ++r) warm += latencies[r];
      warm /= static_cast<double>(latencies.size() - 1);
      const service::CacheCounters c = svc.cache_counters();
      std::printf("--- service (N=%d, %d request%s of %d iter%s) ---\n", n,
                  steps, steps == 1 ? "" : "s", iters, iters == 1 ? "" : "s");
      std::printf("cold (request 0):  %8.3f ms\n", latencies[0] * 1e3);
      std::printf("warm (mean 1..%d): %8.3f ms\n", steps - 1, warm * 1e3);
      std::printf("warm speedup: %.1fx\n", latencies[0] / warm);
      std::printf("cache: %llu hit%s, %llu miss%s, %zu prepared execution%s\n",
                  static_cast<unsigned long long>(c.hits),
                  c.hits == 1 ? "" : "s",
                  static_cast<unsigned long long>(c.misses),
                  c.misses == 1 ? "" : "es", client.num_executions(),
                  client.num_executions() == 1 ? "" : "s");
      if (!roofline_out.empty() &&
          !write_roofline(roofline_out, input, level_name, n, iters,
                          last_stats)) {
        return 2;
      }
      if (obs_summary) print_wait_state(last_stats);
      session.flush();
      if (!emit_metrics(metrics_out, &svc.metrics())) return 2;
    } else if (run) {
      if (compiled.processors) {
        mc.pe_rows = compiled.processors->first;
        mc.pe_cols = compiled.processors->second;
      }

      Execution exec(std::move(compiled.program), mc);
      exec.set_trace(trace_ptr);
      exec.prepare(Bindings{}.set("N", n));
      if (exec.program().find_array("U") >= 0) {
        exec.set_array("U",
                       [](int i, int j, int) { return i * 0.25 + j * 0.5; });
      }
      auto stats = exec.run(iters);
      std::printf("--- run (N=%d, %dx%d PEs, %d iter%s) ---\n", n,
                  mc.pe_rows, mc.pe_cols, iters, iters == 1 ? "" : "s");
      std::printf("wall: %.3f ms\n", stats.wall_seconds * 1e3);
      std::printf("machine: %s\n", stats.machine.to_json().c_str());
      if (!roofline_out.empty() &&
          !write_roofline(roofline_out, input, level_name, n, iters,
                          stats)) {
        return 2;
      }
      if (obs_summary) print_wait_state(stats);
      session.flush();
      if (!emit_metrics(metrics_out, nullptr)) return 2;
    }
  } catch (const CompileError& e) {
    std::fprintf(stderr, "compilation failed:\n%s", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "execution failed: %s\n", e.what());
    return 1;
  }
  return 0;
}

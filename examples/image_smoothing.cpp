// Image-processing example (one of the stencil domains the paper's
// introduction motivates): repeated 9-point weighted smoothing of a
// synthetic image, comparing the naive translation (O0) against the
// fully optimized pipeline (O4) on the same simulated machine.
#include <cmath>
#include <cstdio>

#include "driver/hpfsc.hpp"

namespace {

// 9-point Gaussian-like blur written with CSHIFTs (weights 1-2-4).
constexpr const char* kBlur = R"(
PROGRAM BLUR
INTEGER N
REAL IMG(N,N), OUT(N,N)
!HPF$ DISTRIBUTE IMG(BLOCK,BLOCK)
!HPF$ DISTRIBUTE OUT(BLOCK,BLOCK)
OUT = 0.25   * IMG                                        &
    + 0.125  * CSHIFT(IMG,-1,1) + 0.125  * CSHIFT(IMG,+1,1) &
    + 0.125  * CSHIFT(IMG,-1,2) + 0.125  * CSHIFT(IMG,+1,2) &
    + 0.0625 * CSHIFT(CSHIFT(IMG,-1,1),-1,2)               &
    + 0.0625 * CSHIFT(CSHIFT(IMG,-1,1),+1,2)               &
    + 0.0625 * CSHIFT(CSHIFT(IMG,+1,1),-1,2)               &
    + 0.0625 * CSHIFT(CSHIFT(IMG,+1,1),+1,2)
IMG = OUT
END
)";

double synthetic_image(int i, int j, int n) {
  // A bright square on a dark background plus high-frequency noise.
  const bool inside = i > n / 4 && i < 3 * n / 4 && j > n / 4 && j < 3 * n / 4;
  return (inside ? 1.0 : 0.0) + 0.1 * ((i * 7 + j * 13) % 5 - 2);
}

double edge_energy(const std::vector<double>& img, int n) {
  // Sum of squared horizontal gradients: decreases as the image blurs.
  double e = 0.0;
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i + 1 < n; ++i) {
      double d = img[static_cast<std::size_t>(i + 1) +
                     static_cast<std::size_t>(j) * n] -
                 img[static_cast<std::size_t>(i) +
                     static_cast<std::size_t>(j) * n];
      e += d * d;
    }
  }
  return e;
}

}  // namespace

int main() {
  using namespace hpfsc;
  const int n = 256;
  const int passes = 10;

  simpi::MachineConfig mc;
  mc.pe_rows = 2;
  mc.pe_cols = 2;
  mc.cost.emulate = true;
  mc.cost.memory_ns_per_byte = 2.0;

  std::printf("9-point blur of a %dx%d image, %d passes, 4 PEs\n\n", n, n,
              passes);
  std::printf("  %-28s %10s %9s %11s\n", "compiler", "time[ms]", "messages",
              "intra-bytes");

  std::vector<double> result_o4;
  for (int level : {0, 4}) {
    CompilerOptions opts = CompilerOptions::level(level);
    opts.passes.offset.live_out = {"IMG", "OUT"};
    Compiler compiler;
    CompiledProgram compiled = compiler.compile(kBlur, opts);
    Execution exec(std::move(compiled.program), mc);
    exec.prepare(Bindings{}.set("N", n));
    exec.set_array("IMG", [n](int i, int j, int) {
      return synthetic_image(i, j, n);
    });
    auto before = edge_energy(exec.get_array("IMG"), n);
    auto stats = exec.run(passes);
    auto img = exec.get_array("IMG");
    auto after = edge_energy(img, n);
    std::printf("  %-28s %10.2f %9llu %11llu\n",
                level == 0 ? "O0 naive translation" : "O4 full pipeline",
                stats.wall_seconds * 1e3,
                static_cast<unsigned long long>(stats.machine.messages_sent),
                static_cast<unsigned long long>(
                    stats.machine.intra_copy_bytes));
    if (level == 4) {
      result_o4 = img;
      std::printf("\n  edge energy %.1f -> %.1f (blur works)\n", before,
                  after);
    }
  }
  return 0;
}

// Textual reproduction of the paper's data-movement figures: runs the
// four unioned OVERLAP_CSHIFT calls of Figure 6 one at a time on a 2x2
// machine and, after each, prints the recorded transfers (Figures 7, 9)
// and the overlap-area state of every PE (Figures 8, 10).  Legend:
// 'o' owned subgrid cell, '#' overlap cell holding valid data,
// '.' overlap cell not yet filled.
#include <cstdio>
#include <numeric>

#include "driver/hpfsc.hpp"
#include "simpi/shift_ops.hpp"
#include "simpi/trace.hpp"

int main() {
  using namespace simpi;
  const int n = 10;  // 5x5 subgrids on 2x2 PEs, like the paper's figures

  Machine machine(MachineConfig{.pe_rows = 2, .pe_cols = 2});
  machine.enable_tracing();

  DistArrayDesc desc;
  desc.name = "SRC";
  desc.rank = 2;
  desc.extent = {n, n, 1};
  desc.dist = {DistKind::Block, DistKind::Block, DistKind::Collapsed};
  desc.halo.lo = {1, 1, 0};
  desc.halo.hi = {1, 1, 0};
  int id = machine.create_array(desc);

  std::vector<double> data(static_cast<std::size_t>(n) * n);
  std::iota(data.begin(), data.end(), 1.0);
  machine.scatter(id, data);

  struct Step {
    const char* what;
    int shift;
    int dim;
    bool rsd;
  };
  const Step steps[] = {
      {"CALL OVERLAP_CSHIFT(SRC, SHIFT=-1, DIM=1)", -1, 0, false},
      {"CALL OVERLAP_CSHIFT(SRC, SHIFT=+1, DIM=1)", +1, 0, false},
      {"CALL OVERLAP_CSHIFT(SRC, SHIFT=-1, DIM=2, [0:N+1,*])", -1, 1, true},
      {"CALL OVERLAP_CSHIFT(SRC, SHIFT=+1, DIM=2, [0:N+1,*])", +1, 1, true},
  };

  std::printf("Figure 6's four unioned overlap shifts, step by step "
              "(N=%d, 2x2 PEs).\n\n", n);
  for (const Step& step : steps) {
    std::printf("%s\n", step.what);
    RsdExtension rsd;
    if (step.rsd) {
      rsd.lo = {1, 0, 0};
      rsd.hi = {1, 0, 0};
    }
    machine.run([&](Pe& pe) {
      overlap_shift(pe, id, step.shift, step.dim, rsd);
    });
    std::printf("  data movement (paper Figures 7/9):\n");
    for (const TransferEvent& e : machine.take_trace()) {
      std::printf("    %s\n", e.str(2).c_str());
    }
    std::printf("  overlap state (paper Figures 8/10):\n%s\n",
                render_overlap_state(machine, id, data).c_str());
  }
  std::printf("All overlap areas, including the corner elements, are now "
              "populated\nwith a single message per direction per "
              "dimension (4 per PE total).\n");
  return 0;
}

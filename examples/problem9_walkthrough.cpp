// Reproduces the paper's Section 4 extended example interactively: the
// Problem 9 kernel (Purdue Set, Figure 3) is compiled phase by phase and
// the per-phase listings (Figures 12-16) are printed, followed by the
// step-wise performance measurement of Section 5 (Figure 17) at a small
// problem size.
#include <cstdio>

#include "driver/hpfsc.hpp"

namespace {

const char* kLevelNames[] = {
    "O0 original (naive Fortran77+MPI translation)",
    "O1 + offset arrays",
    "O2 + context partitioning",
    "O3 + communication unioning",
    "O4 + memory optimizations",
};

}  // namespace

int main() {
  using namespace hpfsc;

  std::printf("input kernel (paper Figure 3):\n%s\n", kernels::kProblem9);

  // ---- Phase-by-phase listings (Figures 12-16) -----------------------
  CompilerOptions options = CompilerOptions::level(4);
  options.passes.offset.live_out = {"T"};
  Compiler compiler;
  CompiledProgram compiled = compiler.compile(kernels::kProblem9, options);
  for (const auto& listing : compiled.listings) {
    std::printf("=== after %s ===\n%s\n", listing.phase.c_str(),
                listing.code.c_str());
  }
  std::printf("offset arrays : %d shifts converted, %d arrays eliminated\n",
              compiled.pipeline.offset.shifts_converted,
              compiled.pipeline.offset.arrays_eliminated);
  std::printf("comm unioning : %d -> %d overlap shifts\n\n",
              compiled.pipeline.unioning.shifts_before,
              compiled.pipeline.unioning.shifts_after);

  // ---- Step-wise execution times (Figure 17 shape) -------------------
  const int n = 256;
  const int iterations = 20;
  simpi::MachineConfig mc;
  mc.pe_rows = 2;
  mc.pe_cols = 2;
  mc.cost.emulate = true;  // SP-2-like message costs in wall time
  mc.cost.memory_ns_per_byte = 2.0;  // ~POWER2 copy bandwidth

  std::printf("step-wise results on a simulated 4-PE machine "
              "(N=%d, %d iterations):\n\n", n, iterations);
  std::printf("  %-48s %10s %9s %8s\n", "configuration", "time[ms]",
              "messages", "speedup");
  double baseline = 0.0;
  for (int level = 0; level <= 4; ++level) {
    CompilerOptions opts = CompilerOptions::level(level);
    opts.passes.offset.live_out = {"T"};
    CompiledProgram prog = compiler.compile(kernels::kProblem9, opts);
    Execution exec(std::move(prog.program), mc);
    exec.prepare(Bindings{}.set("N", n));
    exec.set_array("U", [](int i, int j, int) { return i * 0.1 + j; });
    exec.run(2);  // warm-up
    auto stats = exec.run(iterations);
    if (level == 0) baseline = stats.wall_seconds;
    std::printf("  %-48s %10.2f %9llu %7.2fx\n", kLevelNames[level],
                stats.wall_seconds * 1e3,
                static_cast<unsigned long long>(
                    stats.machine.messages_sent),
                baseline / stats.wall_seconds);
  }
  return 0;
}

// A complete application built on the public API: solve the Laplace
// equation on the unit square with Dirichlet boundary conditions using
// Jacobi relaxation.  The relaxation kernel is written in HPF with
// EOSHIFT intrinsics (non-periodic boundaries), compiled at full
// optimization, and iterated from the host until converged.
#include <cmath>
#include <cstdio>
#include <vector>

#include "driver/hpfsc.hpp"

namespace {

// One Jacobi sweep over the interior; boundary rows/columns of U are
// re-imposed from BC each sweep (the interior section assignment leaves
// them untouched).
constexpr const char* kSweep = R"(
PROGRAM LAPLACE
INTEGER N
REAL U(N,N), T(N,N)
!HPF$ DISTRIBUTE U(BLOCK,BLOCK)
!HPF$ DISTRIBUTE T(BLOCK,BLOCK)
T(2:N-1,2:N-1) = 0.25 * (U(1:N-2,2:N-1) + U(3:N,2:N-1)  &
                       + U(2:N-1,1:N-2) + U(2:N-1,3:N))
U(2:N-1,2:N-1) = T(2:N-1,2:N-1)
END
)";

double boundary_value(int i, int j, int n) {
  // u = 1 on the top edge (j == n), 0 elsewhere: classic test problem.
  return j == n ? 1.0 : 0.0 * i;
}

}  // namespace

int main() {
  using namespace hpfsc;
  const int n = 64;
  const int sweeps_per_batch = 50;

  CompilerOptions options = CompilerOptions::level(4);
  options.passes.offset.live_out = {"U", "T"};
  Compiler compiler;
  CompiledProgram compiled = compiler.compile(kSweep, options);
  std::printf("optimized sweep:\n%s\n", compiled.listings.back().code.c_str());

  simpi::MachineConfig mc;
  mc.pe_rows = 2;
  mc.pe_cols = 2;
  Execution exec(std::move(compiled.program), mc);
  exec.prepare(Bindings{}.set("N", n));
  exec.set_array("U", [n](int i, int j, int) {
    bool boundary = i == 1 || i == n || j == 1 || j == n;
    return boundary ? boundary_value(i, j, n) : 0.0;
  });

  std::vector<double> prev = exec.get_array("U");
  double total_ms = 0.0;
  int total_sweeps = 0;
  for (int batch = 0; batch < 100; ++batch) {
    auto stats = exec.run(sweeps_per_batch);
    total_ms += stats.wall_seconds * 1e3;
    total_sweeps += sweeps_per_batch;
    std::vector<double> cur = exec.get_array("U");
    double delta = 0.0;
    for (std::size_t k = 0; k < cur.size(); ++k) {
      delta = std::max(delta, std::abs(cur[k] - prev[k]));
    }
    prev = std::move(cur);
    std::printf("after %4d sweeps: max delta per sweep batch = %.3e\n",
                total_sweeps, delta);
    if (delta < 1e-8) break;
  }

  // Sanity: interior average of the converged solution; for this BC the
  // solution averages to ~0.25 over the square.
  double sum = 0.0;
  for (double v : prev) sum += v;
  std::printf("\nconverged after %d sweeps in %.1f ms; mean(U) = %.4f\n",
              total_sweeps, total_ms, sum / static_cast<double>(prev.size()));
  std::printf("center value U(N/2,N/2) = %.4f (analytic ~0.25 at center)\n",
              prev[static_cast<std::size_t>(n / 2 - 1) +
                   static_cast<std::size_t>(n / 2 - 1) * n]);
  return 0;
}

file(REMOVE_RECURSE
  "../bench/bench_unroll"
  "../bench/bench_unroll.pdb"
  "CMakeFiles/bench_unroll.dir/bench_unroll.cpp.o"
  "CMakeFiles/bench_unroll.dir/bench_unroll.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unroll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

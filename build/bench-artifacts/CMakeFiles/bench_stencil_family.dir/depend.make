# Empty dependencies file for bench_stencil_family.
# This may be replaced when dependencies are built.

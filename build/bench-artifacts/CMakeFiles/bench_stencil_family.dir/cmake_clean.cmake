file(REMOVE_RECURSE
  "../bench/bench_stencil_family"
  "../bench/bench_stencil_family.pdb"
  "CMakeFiles/bench_stencil_family.dir/bench_stencil_family.cpp.o"
  "CMakeFiles/bench_stencil_family.dir/bench_stencil_family.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stencil_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

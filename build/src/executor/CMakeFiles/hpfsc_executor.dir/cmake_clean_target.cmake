file(REMOVE_RECURSE
  "libhpfsc_executor.a"
)

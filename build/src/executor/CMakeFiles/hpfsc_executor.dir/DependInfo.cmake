
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/executor/execution.cpp" "src/executor/CMakeFiles/hpfsc_executor.dir/execution.cpp.o" "gcc" "src/executor/CMakeFiles/hpfsc_executor.dir/execution.cpp.o.d"
  "/root/repo/src/executor/plan.cpp" "src/executor/CMakeFiles/hpfsc_executor.dir/plan.cpp.o" "gcc" "src/executor/CMakeFiles/hpfsc_executor.dir/plan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codegen/CMakeFiles/hpfsc_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/simpi/CMakeFiles/hpfsc_simpi.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hpfsc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/hpfsc_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

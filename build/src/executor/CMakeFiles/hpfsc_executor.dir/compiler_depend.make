# Empty compiler generated dependencies file for hpfsc_executor.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hpfsc_executor.dir/execution.cpp.o"
  "CMakeFiles/hpfsc_executor.dir/execution.cpp.o.d"
  "CMakeFiles/hpfsc_executor.dir/plan.cpp.o"
  "CMakeFiles/hpfsc_executor.dir/plan.cpp.o.d"
  "libhpfsc_executor.a"
  "libhpfsc_executor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpfsc_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for hpfsc_passes.
# This may be replaced when dependencies are built.

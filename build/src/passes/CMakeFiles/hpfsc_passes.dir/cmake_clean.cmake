file(REMOVE_RECURSE
  "CMakeFiles/hpfsc_passes.dir/comm_unioning.cpp.o"
  "CMakeFiles/hpfsc_passes.dir/comm_unioning.cpp.o.d"
  "CMakeFiles/hpfsc_passes.dir/context_partition.cpp.o"
  "CMakeFiles/hpfsc_passes.dir/context_partition.cpp.o.d"
  "CMakeFiles/hpfsc_passes.dir/memory_opt.cpp.o"
  "CMakeFiles/hpfsc_passes.dir/memory_opt.cpp.o.d"
  "CMakeFiles/hpfsc_passes.dir/normalize.cpp.o"
  "CMakeFiles/hpfsc_passes.dir/normalize.cpp.o.d"
  "CMakeFiles/hpfsc_passes.dir/offset_arrays.cpp.o"
  "CMakeFiles/hpfsc_passes.dir/offset_arrays.cpp.o.d"
  "CMakeFiles/hpfsc_passes.dir/pipeline.cpp.o"
  "CMakeFiles/hpfsc_passes.dir/pipeline.cpp.o.d"
  "CMakeFiles/hpfsc_passes.dir/scalarize.cpp.o"
  "CMakeFiles/hpfsc_passes.dir/scalarize.cpp.o.d"
  "libhpfsc_passes.a"
  "libhpfsc_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpfsc_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

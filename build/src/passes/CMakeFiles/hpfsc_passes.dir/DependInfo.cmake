
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/passes/comm_unioning.cpp" "src/passes/CMakeFiles/hpfsc_passes.dir/comm_unioning.cpp.o" "gcc" "src/passes/CMakeFiles/hpfsc_passes.dir/comm_unioning.cpp.o.d"
  "/root/repo/src/passes/context_partition.cpp" "src/passes/CMakeFiles/hpfsc_passes.dir/context_partition.cpp.o" "gcc" "src/passes/CMakeFiles/hpfsc_passes.dir/context_partition.cpp.o.d"
  "/root/repo/src/passes/memory_opt.cpp" "src/passes/CMakeFiles/hpfsc_passes.dir/memory_opt.cpp.o" "gcc" "src/passes/CMakeFiles/hpfsc_passes.dir/memory_opt.cpp.o.d"
  "/root/repo/src/passes/normalize.cpp" "src/passes/CMakeFiles/hpfsc_passes.dir/normalize.cpp.o" "gcc" "src/passes/CMakeFiles/hpfsc_passes.dir/normalize.cpp.o.d"
  "/root/repo/src/passes/offset_arrays.cpp" "src/passes/CMakeFiles/hpfsc_passes.dir/offset_arrays.cpp.o" "gcc" "src/passes/CMakeFiles/hpfsc_passes.dir/offset_arrays.cpp.o.d"
  "/root/repo/src/passes/pipeline.cpp" "src/passes/CMakeFiles/hpfsc_passes.dir/pipeline.cpp.o" "gcc" "src/passes/CMakeFiles/hpfsc_passes.dir/pipeline.cpp.o.d"
  "/root/repo/src/passes/scalarize.cpp" "src/passes/CMakeFiles/hpfsc_passes.dir/scalarize.cpp.o" "gcc" "src/passes/CMakeFiles/hpfsc_passes.dir/scalarize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/hpfsc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/hpfsc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hpfsc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/simpi/CMakeFiles/hpfsc_simpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libhpfsc_passes.a"
)

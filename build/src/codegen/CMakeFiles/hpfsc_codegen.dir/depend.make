# Empty dependencies file for hpfsc_codegen.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/lower_spmd.cpp" "src/codegen/CMakeFiles/hpfsc_codegen.dir/lower_spmd.cpp.o" "gcc" "src/codegen/CMakeFiles/hpfsc_codegen.dir/lower_spmd.cpp.o.d"
  "/root/repo/src/codegen/spmd_printer.cpp" "src/codegen/CMakeFiles/hpfsc_codegen.dir/spmd_printer.cpp.o" "gcc" "src/codegen/CMakeFiles/hpfsc_codegen.dir/spmd_printer.cpp.o.d"
  "/root/repo/src/codegen/spmd_program.cpp" "src/codegen/CMakeFiles/hpfsc_codegen.dir/spmd_program.cpp.o" "gcc" "src/codegen/CMakeFiles/hpfsc_codegen.dir/spmd_program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/hpfsc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/simpi/CMakeFiles/hpfsc_simpi.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hpfsc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libhpfsc_codegen.a"
)

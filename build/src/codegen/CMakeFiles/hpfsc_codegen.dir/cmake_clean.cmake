file(REMOVE_RECURSE
  "CMakeFiles/hpfsc_codegen.dir/lower_spmd.cpp.o"
  "CMakeFiles/hpfsc_codegen.dir/lower_spmd.cpp.o.d"
  "CMakeFiles/hpfsc_codegen.dir/spmd_printer.cpp.o"
  "CMakeFiles/hpfsc_codegen.dir/spmd_printer.cpp.o.d"
  "CMakeFiles/hpfsc_codegen.dir/spmd_program.cpp.o"
  "CMakeFiles/hpfsc_codegen.dir/spmd_program.cpp.o.d"
  "libhpfsc_codegen.a"
  "libhpfsc_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpfsc_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

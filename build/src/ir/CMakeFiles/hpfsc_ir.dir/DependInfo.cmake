
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/expr.cpp" "src/ir/CMakeFiles/hpfsc_ir.dir/expr.cpp.o" "gcc" "src/ir/CMakeFiles/hpfsc_ir.dir/expr.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/ir/CMakeFiles/hpfsc_ir.dir/printer.cpp.o" "gcc" "src/ir/CMakeFiles/hpfsc_ir.dir/printer.cpp.o.d"
  "/root/repo/src/ir/program.cpp" "src/ir/CMakeFiles/hpfsc_ir.dir/program.cpp.o" "gcc" "src/ir/CMakeFiles/hpfsc_ir.dir/program.cpp.o.d"
  "/root/repo/src/ir/stmt.cpp" "src/ir/CMakeFiles/hpfsc_ir.dir/stmt.cpp.o" "gcc" "src/ir/CMakeFiles/hpfsc_ir.dir/stmt.cpp.o.d"
  "/root/repo/src/ir/symbols.cpp" "src/ir/CMakeFiles/hpfsc_ir.dir/symbols.cpp.o" "gcc" "src/ir/CMakeFiles/hpfsc_ir.dir/symbols.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/hpfsc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/simpi/CMakeFiles/hpfsc_simpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libhpfsc_ir.a"
)

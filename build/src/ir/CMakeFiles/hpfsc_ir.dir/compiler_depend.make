# Empty compiler generated dependencies file for hpfsc_ir.
# This may be replaced when dependencies are built.

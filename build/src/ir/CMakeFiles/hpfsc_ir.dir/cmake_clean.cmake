file(REMOVE_RECURSE
  "CMakeFiles/hpfsc_ir.dir/expr.cpp.o"
  "CMakeFiles/hpfsc_ir.dir/expr.cpp.o.d"
  "CMakeFiles/hpfsc_ir.dir/printer.cpp.o"
  "CMakeFiles/hpfsc_ir.dir/printer.cpp.o.d"
  "CMakeFiles/hpfsc_ir.dir/program.cpp.o"
  "CMakeFiles/hpfsc_ir.dir/program.cpp.o.d"
  "CMakeFiles/hpfsc_ir.dir/stmt.cpp.o"
  "CMakeFiles/hpfsc_ir.dir/stmt.cpp.o.d"
  "CMakeFiles/hpfsc_ir.dir/symbols.cpp.o"
  "CMakeFiles/hpfsc_ir.dir/symbols.cpp.o.d"
  "libhpfsc_ir.a"
  "libhpfsc_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpfsc_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simpi/arena.cpp" "src/simpi/CMakeFiles/hpfsc_simpi.dir/arena.cpp.o" "gcc" "src/simpi/CMakeFiles/hpfsc_simpi.dir/arena.cpp.o.d"
  "/root/repo/src/simpi/dist_array.cpp" "src/simpi/CMakeFiles/hpfsc_simpi.dir/dist_array.cpp.o" "gcc" "src/simpi/CMakeFiles/hpfsc_simpi.dir/dist_array.cpp.o.d"
  "/root/repo/src/simpi/layout.cpp" "src/simpi/CMakeFiles/hpfsc_simpi.dir/layout.cpp.o" "gcc" "src/simpi/CMakeFiles/hpfsc_simpi.dir/layout.cpp.o.d"
  "/root/repo/src/simpi/machine.cpp" "src/simpi/CMakeFiles/hpfsc_simpi.dir/machine.cpp.o" "gcc" "src/simpi/CMakeFiles/hpfsc_simpi.dir/machine.cpp.o.d"
  "/root/repo/src/simpi/shift_ops.cpp" "src/simpi/CMakeFiles/hpfsc_simpi.dir/shift_ops.cpp.o" "gcc" "src/simpi/CMakeFiles/hpfsc_simpi.dir/shift_ops.cpp.o.d"
  "/root/repo/src/simpi/trace.cpp" "src/simpi/CMakeFiles/hpfsc_simpi.dir/trace.cpp.o" "gcc" "src/simpi/CMakeFiles/hpfsc_simpi.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/hpfsc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libhpfsc_simpi.a"
)

# Empty compiler generated dependencies file for hpfsc_simpi.
# This may be replaced when dependencies are built.

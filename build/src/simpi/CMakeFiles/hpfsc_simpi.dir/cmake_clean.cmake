file(REMOVE_RECURSE
  "CMakeFiles/hpfsc_simpi.dir/arena.cpp.o"
  "CMakeFiles/hpfsc_simpi.dir/arena.cpp.o.d"
  "CMakeFiles/hpfsc_simpi.dir/dist_array.cpp.o"
  "CMakeFiles/hpfsc_simpi.dir/dist_array.cpp.o.d"
  "CMakeFiles/hpfsc_simpi.dir/layout.cpp.o"
  "CMakeFiles/hpfsc_simpi.dir/layout.cpp.o.d"
  "CMakeFiles/hpfsc_simpi.dir/machine.cpp.o"
  "CMakeFiles/hpfsc_simpi.dir/machine.cpp.o.d"
  "CMakeFiles/hpfsc_simpi.dir/shift_ops.cpp.o"
  "CMakeFiles/hpfsc_simpi.dir/shift_ops.cpp.o.d"
  "CMakeFiles/hpfsc_simpi.dir/trace.cpp.o"
  "CMakeFiles/hpfsc_simpi.dir/trace.cpp.o.d"
  "libhpfsc_simpi.a"
  "libhpfsc_simpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpfsc_simpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

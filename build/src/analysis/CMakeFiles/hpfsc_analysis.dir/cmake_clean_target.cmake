file(REMOVE_RECURSE
  "libhpfsc_analysis.a"
)

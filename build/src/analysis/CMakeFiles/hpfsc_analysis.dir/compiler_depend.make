# Empty compiler generated dependencies file for hpfsc_analysis.
# This may be replaced when dependencies are built.

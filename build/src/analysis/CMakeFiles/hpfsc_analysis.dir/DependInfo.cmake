
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/array_ssa.cpp" "src/analysis/CMakeFiles/hpfsc_analysis.dir/array_ssa.cpp.o" "gcc" "src/analysis/CMakeFiles/hpfsc_analysis.dir/array_ssa.cpp.o.d"
  "/root/repo/src/analysis/congruence.cpp" "src/analysis/CMakeFiles/hpfsc_analysis.dir/congruence.cpp.o" "gcc" "src/analysis/CMakeFiles/hpfsc_analysis.dir/congruence.cpp.o.d"
  "/root/repo/src/analysis/ddg.cpp" "src/analysis/CMakeFiles/hpfsc_analysis.dir/ddg.cpp.o" "gcc" "src/analysis/CMakeFiles/hpfsc_analysis.dir/ddg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/hpfsc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hpfsc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/simpi/CMakeFiles/hpfsc_simpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/hpfsc_analysis.dir/array_ssa.cpp.o"
  "CMakeFiles/hpfsc_analysis.dir/array_ssa.cpp.o.d"
  "CMakeFiles/hpfsc_analysis.dir/congruence.cpp.o"
  "CMakeFiles/hpfsc_analysis.dir/congruence.cpp.o.d"
  "CMakeFiles/hpfsc_analysis.dir/ddg.cpp.o"
  "CMakeFiles/hpfsc_analysis.dir/ddg.cpp.o.d"
  "libhpfsc_analysis.a"
  "libhpfsc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpfsc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/hpfsc_driver.dir/compiler.cpp.o"
  "CMakeFiles/hpfsc_driver.dir/compiler.cpp.o.d"
  "libhpfsc_driver.a"
  "libhpfsc_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpfsc_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

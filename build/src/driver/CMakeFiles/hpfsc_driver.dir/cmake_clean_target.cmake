file(REMOVE_RECURSE
  "libhpfsc_driver.a"
)

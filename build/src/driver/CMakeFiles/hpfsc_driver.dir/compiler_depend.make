# Empty compiler generated dependencies file for hpfsc_driver.
# This may be replaced when dependencies are built.

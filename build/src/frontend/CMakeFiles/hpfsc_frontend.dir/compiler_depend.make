# Empty compiler generated dependencies file for hpfsc_frontend.
# This may be replaced when dependencies are built.

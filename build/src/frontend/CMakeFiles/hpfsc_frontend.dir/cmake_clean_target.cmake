file(REMOVE_RECURSE
  "libhpfsc_frontend.a"
)

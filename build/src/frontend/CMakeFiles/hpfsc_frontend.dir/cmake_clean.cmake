file(REMOVE_RECURSE
  "CMakeFiles/hpfsc_frontend.dir/ast.cpp.o"
  "CMakeFiles/hpfsc_frontend.dir/ast.cpp.o.d"
  "CMakeFiles/hpfsc_frontend.dir/lexer.cpp.o"
  "CMakeFiles/hpfsc_frontend.dir/lexer.cpp.o.d"
  "CMakeFiles/hpfsc_frontend.dir/lower.cpp.o"
  "CMakeFiles/hpfsc_frontend.dir/lower.cpp.o.d"
  "CMakeFiles/hpfsc_frontend.dir/parser.cpp.o"
  "CMakeFiles/hpfsc_frontend.dir/parser.cpp.o.d"
  "libhpfsc_frontend.a"
  "libhpfsc_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpfsc_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

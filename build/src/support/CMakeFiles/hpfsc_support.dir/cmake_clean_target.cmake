file(REMOVE_RECURSE
  "libhpfsc_support.a"
)

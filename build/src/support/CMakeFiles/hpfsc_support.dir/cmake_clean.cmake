file(REMOVE_RECURSE
  "CMakeFiles/hpfsc_support.dir/diagnostics.cpp.o"
  "CMakeFiles/hpfsc_support.dir/diagnostics.cpp.o.d"
  "libhpfsc_support.a"
  "libhpfsc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpfsc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

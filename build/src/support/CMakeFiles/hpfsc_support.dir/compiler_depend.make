# Empty compiler generated dependencies file for hpfsc_support.
# This may be replaced when dependencies are built.

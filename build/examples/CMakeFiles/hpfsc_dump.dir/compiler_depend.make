# Empty compiler generated dependencies file for hpfsc_dump.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hpfsc_dump.dir/hpfsc_dump.cpp.o"
  "CMakeFiles/hpfsc_dump.dir/hpfsc_dump.cpp.o.d"
  "hpfsc_dump"
  "hpfsc_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpfsc_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/image_smoothing.dir/image_smoothing.cpp.o"
  "CMakeFiles/image_smoothing.dir/image_smoothing.cpp.o.d"
  "image_smoothing"
  "image_smoothing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_smoothing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/problem9_walkthrough.dir/problem9_walkthrough.cpp.o"
  "CMakeFiles/problem9_walkthrough.dir/problem9_walkthrough.cpp.o.d"
  "problem9_walkthrough"
  "problem9_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/problem9_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for problem9_walkthrough.
# This may be replaced when dependencies are built.

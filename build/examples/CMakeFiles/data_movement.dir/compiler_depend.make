# Empty compiler generated dependencies file for data_movement.
# This may be replaced when dependencies are built.

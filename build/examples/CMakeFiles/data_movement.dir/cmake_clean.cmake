file(REMOVE_RECURSE
  "CMakeFiles/data_movement.dir/data_movement.cpp.o"
  "CMakeFiles/data_movement.dir/data_movement.cpp.o.d"
  "data_movement"
  "data_movement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_movement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

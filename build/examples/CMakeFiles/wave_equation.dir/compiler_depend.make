# Empty compiler generated dependencies file for wave_equation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/wave_equation.dir/wave_equation.cpp.o"
  "CMakeFiles/wave_equation.dir/wave_equation.cpp.o.d"
  "wave_equation"
  "wave_equation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wave_equation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

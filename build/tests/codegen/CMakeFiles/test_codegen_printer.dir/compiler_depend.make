# Empty compiler generated dependencies file for test_codegen_printer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_codegen_printer.dir/test_spmd_printer.cpp.o"
  "CMakeFiles/test_codegen_printer.dir/test_spmd_printer.cpp.o.d"
  "test_codegen_printer"
  "test_codegen_printer.pdb"
  "test_codegen_printer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codegen_printer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_codegen_lower.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_codegen_lower.dir/test_lower_spmd.cpp.o"
  "CMakeFiles/test_codegen_lower.dir/test_lower_spmd.cpp.o.d"
  "test_codegen_lower"
  "test_codegen_lower.pdb"
  "test_codegen_lower[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codegen_lower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

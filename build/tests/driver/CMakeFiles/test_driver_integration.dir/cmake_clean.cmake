file(REMOVE_RECURSE
  "CMakeFiles/test_driver_integration.dir/test_integration.cpp.o"
  "CMakeFiles/test_driver_integration.dir/test_integration.cpp.o.d"
  "test_driver_integration"
  "test_driver_integration.pdb"
  "test_driver_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_driver_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

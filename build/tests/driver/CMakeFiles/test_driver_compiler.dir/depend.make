# Empty dependencies file for test_driver_compiler.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_simpi_machine.
# This may be replaced when dependencies are built.

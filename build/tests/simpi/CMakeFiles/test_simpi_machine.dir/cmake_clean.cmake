file(REMOVE_RECURSE
  "CMakeFiles/test_simpi_machine.dir/test_machine.cpp.o"
  "CMakeFiles/test_simpi_machine.dir/test_machine.cpp.o.d"
  "test_simpi_machine"
  "test_simpi_machine.pdb"
  "test_simpi_machine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simpi_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

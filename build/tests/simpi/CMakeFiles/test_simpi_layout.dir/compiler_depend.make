# Empty compiler generated dependencies file for test_simpi_layout.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_simpi_shift_ops.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_simpi_shift_ops.dir/test_shift_ops.cpp.o"
  "CMakeFiles/test_simpi_shift_ops.dir/test_shift_ops.cpp.o.d"
  "test_simpi_shift_ops"
  "test_simpi_shift_ops.pdb"
  "test_simpi_shift_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simpi_shift_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_simpi_arena.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_simpi_arena.dir/test_arena.cpp.o"
  "CMakeFiles/test_simpi_arena.dir/test_arena.cpp.o.d"
  "test_simpi_arena"
  "test_simpi_arena.pdb"
  "test_simpi_arena[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simpi_arena.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

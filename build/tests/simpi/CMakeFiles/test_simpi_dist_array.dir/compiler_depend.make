# Empty compiler generated dependencies file for test_simpi_dist_array.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_simpi_dist_array.dir/test_dist_array.cpp.o"
  "CMakeFiles/test_simpi_dist_array.dir/test_dist_array.cpp.o.d"
  "test_simpi_dist_array"
  "test_simpi_dist_array.pdb"
  "test_simpi_dist_array[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simpi_dist_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

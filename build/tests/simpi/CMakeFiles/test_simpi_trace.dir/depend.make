# Empty dependencies file for test_simpi_trace.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_simpi_trace.dir/test_trace.cpp.o"
  "CMakeFiles/test_simpi_trace.dir/test_trace.cpp.o.d"
  "test_simpi_trace"
  "test_simpi_trace.pdb"
  "test_simpi_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simpi_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

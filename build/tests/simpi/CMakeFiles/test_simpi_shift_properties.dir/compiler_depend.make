# Empty compiler generated dependencies file for test_simpi_shift_properties.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_simpi_shift_properties.dir/test_shift_properties.cpp.o"
  "CMakeFiles/test_simpi_shift_properties.dir/test_shift_properties.cpp.o.d"
  "test_simpi_shift_properties"
  "test_simpi_shift_properties.pdb"
  "test_simpi_shift_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simpi_shift_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

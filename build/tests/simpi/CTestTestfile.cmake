# CMake generated Testfile for 
# Source directory: /root/repo/tests/simpi
# Build directory: /root/repo/build/tests/simpi
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/simpi/test_simpi_layout[1]_include.cmake")
include("/root/repo/build/tests/simpi/test_simpi_arena[1]_include.cmake")
include("/root/repo/build/tests/simpi/test_simpi_dist_array[1]_include.cmake")
include("/root/repo/build/tests/simpi/test_simpi_machine[1]_include.cmake")
include("/root/repo/build/tests/simpi/test_simpi_shift_ops[1]_include.cmake")
include("/root/repo/build/tests/simpi/test_simpi_shift_properties[1]_include.cmake")
include("/root/repo/build/tests/simpi/test_simpi_trace[1]_include.cmake")

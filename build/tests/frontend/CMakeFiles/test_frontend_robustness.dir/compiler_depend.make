# Empty compiler generated dependencies file for test_frontend_robustness.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests/passes
# Build directory: /root/repo/build/tests/passes
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/passes/test_passes_normalize[1]_include.cmake")
include("/root/repo/build/tests/passes/test_passes_offset_arrays[1]_include.cmake")
include("/root/repo/build/tests/passes/test_passes_partition_unioning[1]_include.cmake")
include("/root/repo/build/tests/passes/test_passes_scalarize[1]_include.cmake")
include("/root/repo/build/tests/passes/test_passes_paper_walkthrough[1]_include.cmake")

# Empty dependencies file for test_passes_partition_unioning.
# This may be replaced when dependencies are built.

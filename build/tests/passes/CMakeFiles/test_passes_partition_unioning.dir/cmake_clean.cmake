file(REMOVE_RECURSE
  "CMakeFiles/test_passes_partition_unioning.dir/test_partition_unioning.cpp.o"
  "CMakeFiles/test_passes_partition_unioning.dir/test_partition_unioning.cpp.o.d"
  "test_passes_partition_unioning"
  "test_passes_partition_unioning.pdb"
  "test_passes_partition_unioning[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_passes_partition_unioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_passes_offset_arrays.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_passes_offset_arrays.dir/test_offset_arrays.cpp.o"
  "CMakeFiles/test_passes_offset_arrays.dir/test_offset_arrays.cpp.o.d"
  "test_passes_offset_arrays"
  "test_passes_offset_arrays.pdb"
  "test_passes_offset_arrays[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_passes_offset_arrays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_passes_normalize.dir/test_normalize.cpp.o"
  "CMakeFiles/test_passes_normalize.dir/test_normalize.cpp.o.d"
  "test_passes_normalize"
  "test_passes_normalize.pdb"
  "test_passes_normalize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_passes_normalize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/passes/test_normalize.cpp" "tests/passes/CMakeFiles/test_passes_normalize.dir/test_normalize.cpp.o" "gcc" "tests/passes/CMakeFiles/test_passes_normalize.dir/test_normalize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/hpfsc_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/executor/CMakeFiles/hpfsc_executor.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/hpfsc_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/passes/CMakeFiles/hpfsc_passes.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/hpfsc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/hpfsc_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/hpfsc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/simpi/CMakeFiles/hpfsc_simpi.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hpfsc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for test_passes_scalarize.
# This may be replaced when dependencies are built.

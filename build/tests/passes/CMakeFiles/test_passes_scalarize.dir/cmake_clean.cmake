file(REMOVE_RECURSE
  "CMakeFiles/test_passes_scalarize.dir/test_scalarize.cpp.o"
  "CMakeFiles/test_passes_scalarize.dir/test_scalarize.cpp.o.d"
  "test_passes_scalarize"
  "test_passes_scalarize.pdb"
  "test_passes_scalarize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_passes_scalarize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_passes_paper_walkthrough.
# This may be replaced when dependencies are built.

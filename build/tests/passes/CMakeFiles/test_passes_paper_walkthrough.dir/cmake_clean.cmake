file(REMOVE_RECURSE
  "CMakeFiles/test_passes_paper_walkthrough.dir/test_paper_walkthrough.cpp.o"
  "CMakeFiles/test_passes_paper_walkthrough.dir/test_paper_walkthrough.cpp.o.d"
  "test_passes_paper_walkthrough"
  "test_passes_paper_walkthrough.pdb"
  "test_passes_paper_walkthrough[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_passes_paper_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_congruence.dir/test_congruence.cpp.o"
  "CMakeFiles/test_analysis_congruence.dir/test_congruence.cpp.o.d"
  "test_analysis_congruence"
  "test_analysis_congruence.pdb"
  "test_analysis_congruence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_congruence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_analysis_congruence.
# This may be replaced when dependencies are built.

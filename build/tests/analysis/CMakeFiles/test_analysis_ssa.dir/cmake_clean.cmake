file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_ssa.dir/test_ssa.cpp.o"
  "CMakeFiles/test_analysis_ssa.dir/test_ssa.cpp.o.d"
  "test_analysis_ssa"
  "test_analysis_ssa.pdb"
  "test_analysis_ssa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_ssa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_analysis_ssa.
# This may be replaced when dependencies are built.

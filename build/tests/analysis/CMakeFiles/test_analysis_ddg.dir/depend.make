# Empty dependencies file for test_analysis_ddg.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_ir_symbols.dir/test_symbols.cpp.o"
  "CMakeFiles/test_ir_symbols.dir/test_symbols.cpp.o.d"
  "test_ir_symbols"
  "test_ir_symbols.pdb"
  "test_ir_symbols[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ir_symbols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_ir_symbols.
# This may be replaced when dependencies are built.

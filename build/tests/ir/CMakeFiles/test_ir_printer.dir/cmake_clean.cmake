file(REMOVE_RECURSE
  "CMakeFiles/test_ir_printer.dir/test_printer.cpp.o"
  "CMakeFiles/test_ir_printer.dir/test_printer.cpp.o.d"
  "test_ir_printer"
  "test_ir_printer.pdb"
  "test_ir_printer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ir_printer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

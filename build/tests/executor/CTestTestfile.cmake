# CMake generated Testfile for 
# Source directory: /root/repo/tests/executor
# Build directory: /root/repo/build/tests/executor
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/executor/test_executor_plan[1]_include.cmake")
include("/root/repo/build/tests/executor/test_executor_execution[1]_include.cmake")
include("/root/repo/build/tests/executor/test_executor_equivalence[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/test_executor_equivalence.dir/test_equivalence.cpp.o"
  "CMakeFiles/test_executor_equivalence.dir/test_equivalence.cpp.o.d"
  "test_executor_equivalence"
  "test_executor_equivalence.pdb"
  "test_executor_equivalence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_executor_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

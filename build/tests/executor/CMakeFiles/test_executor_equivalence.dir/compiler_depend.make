# Empty compiler generated dependencies file for test_executor_equivalence.
# This may be replaced when dependencies are built.

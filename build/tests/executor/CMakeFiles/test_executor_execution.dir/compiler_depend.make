# Empty compiler generated dependencies file for test_executor_execution.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_executor_execution.dir/test_execution.cpp.o"
  "CMakeFiles/test_executor_execution.dir/test_execution.cpp.o.d"
  "test_executor_execution"
  "test_executor_execution.pdb"
  "test_executor_execution[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_executor_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

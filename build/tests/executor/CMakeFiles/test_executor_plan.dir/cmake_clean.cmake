file(REMOVE_RECURSE
  "CMakeFiles/test_executor_plan.dir/test_plan.cpp.o"
  "CMakeFiles/test_executor_plan.dir/test_plan.cpp.o.d"
  "test_executor_plan"
  "test_executor_plan.pdb"
  "test_executor_plan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_executor_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_executor_plan.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("simpi")
subdirs("frontend")
subdirs("passes")
subdirs("executor")
subdirs("analysis")
subdirs("ir")
subdirs("support")
subdirs("codegen")
subdirs("driver")
